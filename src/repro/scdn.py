"""The S-CDN facade: one object wiring the paper's four components.

"Our vision of a S-CDN captures four core components: a Social Network
Platform, Allocation Servers, Individual Storage Repositories, and a
Social Middleware" (Section V). :class:`SCDN` assembles them over a
trusted social graph and drives a full simulated deployment:

* researchers **join** through the platform (credential + session),
  contributing a storage repository;
* owners **publish** datasets (policy-checked, placement-driven);
* members **access** data through their CDN client (policy-checked,
  socially-routed, measured);
* churn and failures flow through the allocation server and the
  replication policy;
* every event lands in a :class:`~repro.metrics.MetricsCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from .cdn.integrity import IntegrityScrubber
    from .cdn.migration import MigrationConfig, MigrationEngine
    from .cdn.peers import PeerRegistry
    from .sim.failures import FailureInjector

from .errors import AuthenticationError, AuthorizationError, ConfigurationError
from .ids import AuthorId, DatasetId, NodeId
from .rng import SeedLike, make_rng, spawn
from .social.graph import CoauthorshipGraph
from .cdn.allocation import AllocationServer
from .cdn.client import AccessOutcome, CDNClient
from .cdn.sharding import ShardedAllocationRouter
from .cdn.content import Dataset, segment_dataset
from .cdn.placement.base import PlacementAlgorithm
from .cdn.placement import CommunityNodeDegreePlacement
from .cdn.consistency import UpdatePropagator, WriteRecord
from .cdn.replication import ReplicationPolicy
from .cdn.storage import StorageRepository
from .cdn.transfer import RetryPolicy, TransferClient
from .middleware.auth import Credential, SocialNetworkPlatform
from .middleware.policy import (
    AccessDecision,
    OwnerPolicy,
    PolicyStack,
    ProjectMembershipPolicy,
    SocialProximityPolicy,
)
from .middleware.session import Session, SessionManager
from .metrics.collector import (
    ExchangeEvent,
    MetricsCollector,
    NodeStateEvent,
    RequestEvent,
)
from .obs import Registry, get_registry
from .sim.engine import SimulationEngine
from .sim.network import NetworkModel, random_geography


@dataclass(frozen=True)
class SCDNConfig:
    """Facade configuration.

    Attributes
    ----------
    n_replicas:
        Default replica budget per dataset.
    default_capacity_bytes:
        Repository capacity for members joining without an explicit one.
    proximity_hops:
        Social distance from the owner within which access is granted
        (on top of project rosters and ownership).
    transfer_failure_prob:
        Per-attempt failure probability of the simulated mover.
    transfer_retry:
        Retry/backoff/timeout policy of the simulated mover (see
        :class:`repro.cdn.transfer.RetryPolicy`); it validates itself.
    shards:
        Number of allocation shards. 1 (default) wires the classic
        single :class:`~repro.cdn.allocation.AllocationServer`; above 1
        the allocation tier is a
        :class:`~repro.cdn.sharding.ShardedAllocationRouter` over a
        community-partitioned catalog — same interface, bit-identical
        behavior (see :mod:`repro.cdn.sharding`).
    peer_tier:
        Enable the peer-assisted delivery tier (:mod:`repro.cdn.peers`):
        clients that successfully fetch a segment become time-limited,
        trust-gated serving peers ranked ahead of repository replicas
        when socially closer. Off by default — and when off, the
        deployment is bit-identical to a peer-unaware one.
    peer_lease_ttl_s / peer_cache_segments / peer_max_concurrent_serves:
        Peer-tier knobs (lease TTL in engine time, per-node lease cap —
        zero admits nobody — and per-lease in-flight read cap); see
        :class:`~repro.cdn.peers.PeerRegistry`.
    plan_cache:
        Enable the allocation tier's resolve plan cache
        (:mod:`repro.cdn.plancache`): structural rankings memoized per
        ``(segment, requester)`` with epoch-based invalidation, only the
        load tie-break applied per resolve. Byte-identical output, just
        faster; off by default — and when off, every resolve runs the
        exact uncached path (bit-identical to pre-plan-cache builds).
    plan_cache_plans:
        LRU capacity of the plan cache (resident plans), when enabled.
    """

    n_replicas: int = 3
    default_capacity_bytes: int = 500 * 10**9
    proximity_hops: int = 2
    transfer_failure_prob: float = 0.02
    transfer_retry: RetryPolicy = RetryPolicy()
    shards: int = 1
    peer_tier: bool = False
    peer_lease_ttl_s: float = 600.0
    peer_cache_segments: int = 4
    peer_max_concurrent_serves: int = 4
    plan_cache: bool = False
    plan_cache_plans: int = 4096

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigurationError("n_replicas must be >= 1")
        if self.default_capacity_bytes <= 0:
            raise ConfigurationError("default_capacity_bytes must be positive")
        if self.proximity_hops < 0:
            raise ConfigurationError("proximity_hops must be >= 0")
        if not 0.0 <= self.transfer_failure_prob < 1.0:
            raise ConfigurationError("transfer_failure_prob must be in [0, 1)")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.peer_lease_ttl_s <= 0:
            raise ConfigurationError("peer_lease_ttl_s must be positive")
        if self.peer_cache_segments < 0:
            raise ConfigurationError("peer_cache_segments must be >= 0")
        if self.peer_max_concurrent_serves < 1:
            raise ConfigurationError("peer_max_concurrent_serves must be >= 1")
        if self.plan_cache_plans < 1:
            raise ConfigurationError("plan_cache_plans must be >= 1")


class SCDN:
    """A fully wired Social Content Delivery Network.

    Parameters
    ----------
    graph:
        The trusted coauthorship graph (typically the output of a trust
        heuristic).
    placement:
        Replica placement algorithm (default: the paper's winner,
        community node degree).
    network:
        Geographic network model; generated randomly when omitted.
    registry:
        Observability registry shared by every component (allocation
        server, transfer client, sim engine, replication policy);
        defaults to the process-wide one. :meth:`obs_snapshot` exports it.
    """

    def __init__(
        self,
        graph: CoauthorshipGraph,
        *,
        placement: Optional[PlacementAlgorithm] = None,
        network: Optional[NetworkModel] = None,
        config: Optional[SCDNConfig] = None,
        seed: SeedLike = None,
        registry: Optional[Registry] = None,
    ) -> None:
        self.graph = graph
        self.config = config or SCDNConfig()
        self.obs = registry if registry is not None else get_registry()
        rng = make_rng(seed)
        net_rng, alloc_rng, transfer_rng = spawn(rng, 3)
        self.network = network or random_geography(
            [NodeId(str(a)) for a in graph.nodes()], seed=net_rng
        )
        self.platform = SocialNetworkPlatform(graph)
        self.sessions = SessionManager(self.platform)
        if self.config.shards > 1:
            self.server = ShardedAllocationRouter(
                graph,
                placement or CommunityNodeDegreePlacement(),
                n_shards=self.config.shards,
                seed=alloc_rng,
                registry=self.obs,
            )
        else:
            self.server = AllocationServer(
                graph,
                placement or CommunityNodeDegreePlacement(),
                seed=alloc_rng,
                registry=self.obs,
            )
        # partition awareness: discovery filters candidates by requester
        # reachability whenever the network model reports a partition
        self.server.set_reachability_oracle(self.network)
        if self.config.plan_cache:
            # after the oracle install (an epoch source) so freshly built
            # plans are never invalidated by our own wiring
            self.server.enable_plan_cache(
                max_plans=self.config.plan_cache_plans
            )
        self.transfer = TransferClient(
            self.network,
            failure_prob=self.config.transfer_failure_prob,
            retry=self.config.transfer_retry,
            seed=transfer_rng,
            registry=self.obs,
        )
        # verified transfers: the mover checks the source's stored digest
        # against the request's expected digest at completion
        self.transfer.set_digest_resolver(self._stored_digest)
        self.engine = SimulationEngine(registry=self.obs)
        self.collector = MetricsCollector()
        self.replication = ReplicationPolicy(self.server, registry=self.obs)
        self.propagator = UpdatePropagator(
            self.server, self.transfer, self.engine
        )
        self.clients: Dict[AuthorId, CDNClient] = {}
        self._sessions_by_author: Dict[AuthorId, Session] = {}
        self._credentials: Dict[AuthorId, Credential] = {}
        self._rosters: Dict[str, set] = {}
        self._policy = self._build_policy()
        #: peer-assisted delivery tier (None until enabled — the default;
        #: a peerless deployment is bit-identical to pre-peer builds)
        self.peers: Optional["PeerRegistry"] = None
        if self.config.peer_tier:
            self.enable_peer_tier()

    def _build_policy(self) -> PolicyStack:
        return PolicyStack(
            [
                OwnerPolicy(),
                ProjectMembershipPolicy(self._rosters),
                SocialProximityPolicy(self.graph, max_hops=self.config.proximity_hops),
            ]
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join(
        self,
        author: AuthorId,
        *,
        secret: str = "s3cret",
        capacity_bytes: Optional[int] = None,
        region: str = "unknown",
    ) -> CDNClient:
        """A researcher joins: register, authenticate, contribute storage.

        Returns the researcher's CDN client.
        """
        if author in self.clients:
            raise ConfigurationError(f"{author!r} already joined")
        credential = self.platform.register_user(author, secret)
        self._credentials[author] = credential
        session = self.sessions.login(credential, now=self.engine.now)
        self._sessions_by_author[author] = session
        capacity = capacity_bytes or self.config.default_capacity_bytes
        node = NodeId(str(author))
        if node not in self.network:
            # member provisioned after network creation: co-locate at origin
            from .sim.network import GeoPoint

            self.network.add_node(node, GeoPoint(0.0, 0.0))
        repo = StorageRepository(node, capacity)
        self.server.register_repository(author, repo)
        client = CDNClient(
            author, repo, self.server, self.transfer, peers=self.peers
        )
        self.clients[author] = client
        self.collector.register_node(node, capacity_bytes=capacity, region=region)
        self.collector.record_node_state(
            NodeStateEvent(time=self.engine.now, node=node, state="joined")
        )
        return client

    def create_project(self, name: str, members: Sequence[AuthorId]) -> None:
        """Declare a project roster (the multi-center-trial boundary)."""
        if name in self._rosters:
            raise ConfigurationError(f"project {name!r} already exists")
        self._rosters[name] = set(members)
        # ProjectMembershipPolicy snapshots rosters at construction
        self._policy = self._build_policy()

    def _require_session(self, author: AuthorId) -> Session:
        session = self._sessions_by_author.get(author)
        if session is None:
            raise AuthorizationError(f"{author!r} has not joined the S-CDN")
        try:
            return self.sessions.validate(session.token, now=self.engine.now)
        except AuthenticationError:
            # expired: the CDN client holds the user's platform credentials
            # ("configured with the user's social network credentials"),
            # so it re-authenticates transparently
            fresh = self.sessions.login(
                self._credentials[author], now=self.engine.now
            )
            self._sessions_by_author[author] = fresh
            return fresh

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def publish(
        self,
        owner: AuthorId,
        dataset_id: str,
        size_bytes: int,
        *,
        n_segments: int = 1,
        project: Optional[str] = None,
        n_replicas: Optional[int] = None,
    ) -> Dataset:
        """Publish a dataset into the CDN (authenticated, policy-checked)."""
        self._require_session(owner)
        if project is not None and project not in self._rosters:
            raise ConfigurationError(f"unknown project {project!r}")
        if project is not None and owner not in self._rosters[project]:
            raise AuthorizationError(
                f"{owner!r} is not a member of project {project!r}"
            )
        dataset = segment_dataset(
            DatasetId(dataset_id),
            owner,
            size_bytes,
            n_segments=n_segments,
            project=project,
        )
        self.server.publish_dataset(
            dataset,
            n_replicas=n_replicas or self.config.n_replicas,
            at=self.engine.now,
        )
        return dataset

    def access(self, author: AuthorId, dataset_id: str) -> List[AccessOutcome]:
        """Access a dataset as ``author`` (authenticated, policy-checked,
        measured). Returns per-segment outcomes."""
        self._require_session(author)
        client = self.clients[author]
        dataset = self.server.catalog.dataset(DatasetId(dataset_id))
        self._policy.authorize(author, dataset)
        outcomes = client.access_dataset(dataset.dataset_id)
        for outcome in outcomes:
            if outcome.source == "replica-partition":
                kind = "local"
            elif outcome.source == "user-cache":
                kind = "local"
            elif not outcome.ok:
                kind = "failed"
            elif outcome.social_hops is not None and outcome.social_hops <= 1:
                kind = "near"
            else:
                kind = "remote"
            self.collector.record_request(
                RequestEvent(
                    time=self.engine.now,
                    requester=author,
                    segment_id=outcome.segment_id,
                    outcome=kind,  # type: ignore[arg-type]
                    social_hops=outcome.social_hops,
                    duration_s=outcome.duration_s,
                )
            )
            if outcome.source == "remote" and outcome.ok:
                segment = self.server.catalog.segment(outcome.segment_id)
                self.collector.record_exchange(
                    ExchangeEvent(
                        time=self.engine.now,
                        source=NodeId("replica"),
                        dest=client.repository.node_id,
                        segment_id=outcome.segment_id,
                        size_bytes=segment.size_bytes,
                        ok=True,
                        duration_s=outcome.duration_s,
                    )
                )
        return outcomes

    def can_access(self, author: AuthorId, dataset_id: str) -> bool:
        """Policy check without side effects."""
        dataset = self.server.catalog.dataset(DatasetId(dataset_id))
        return self._policy.evaluate(author, dataset) is AccessDecision.ALLOW

    def update(self, author: AuthorId, dataset_id: str) -> List[WriteRecord]:
        """Re-publish a dataset's contents: a new version of every segment.

        Only the dataset owner may write. The write lands on the replica
        socially closest to the owner and propagates to the other replicas
        (eventual consistency; replicas offline at write time are caught
        up by the propagator's anti-entropy sweeps).
        """
        self._require_session(author)
        dataset = self.server.catalog.dataset(DatasetId(dataset_id))
        if author != dataset.owner:
            raise AuthorizationError(
                f"only the owner {dataset.owner!r} may update {dataset_id!r}"
            )
        records: List[WriteRecord] = []
        for segment in dataset.segments:
            resolved = self.server.resolve(segment.segment_id, author)
            records.append(
                self.propagator.write(segment.segment_id, resolved.replica.node_id)
            )
        return records

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def set_offline(self, author: AuthorId) -> None:
        """Take a member's node offline (transient)."""
        node = self.server.node_of(author)
        self.server.node_offline(node, at=self.engine.now)
        self.collector.record_node_state(
            NodeStateEvent(time=self.engine.now, node=node, state="offline")
        )

    def set_online(self, author: AuthorId) -> None:
        """Bring a member's node back online."""
        node = self.server.node_of(author)
        self.server.node_online(node, at=self.engine.now)
        self.collector.record_node_state(
            NodeStateEvent(time=self.engine.now, node=node, state="online")
        )

    def depart(self, author: AuthorId) -> None:
        """A member permanently leaves; replicas migrate elsewhere."""
        node = self.server.node_of(author)
        self.server.migrate_node(node, at=self.engine.now)
        self.collector.record_node_state(
            NodeStateEvent(time=self.engine.now, node=node, state="departed")
        )

    def failure_injector(
        self,
        *,
        seed: SeedLike = None,
        repair_delay_s: float = 0.0,
    ) -> "FailureInjector":
        """A :class:`~repro.sim.failures.FailureInjector` over every
        member node, fully wired into this deployment: its ``is_alive``
        becomes the allocation server's liveness oracle, crashes trigger
        replica migration, outages flip nodes offline/online, and every
        disruption schedules a repair audit ``repair_delay_s`` later on
        the replication policy. The chaos harness
        (:mod:`repro.sim.chaos`) builds on this.
        """
        from .sim.failures import FailureInjector

        if not self.clients:
            raise ConfigurationError("no members joined yet")
        nodes = [client.repository.node_id for client in self.clients.values()]
        injector = FailureInjector(self.engine, nodes, seed=seed)
        injector.attach_server(
            self.server, policy=self.replication, repair_delay_s=repair_delay_s
        )
        if self.peers is not None:
            # crashes and outage starts drop the victim's serving leases
            # (expiry events cancelled — no phantom lease-ends)
            self.peers.attach_injector(injector)
        return injector

    # ------------------------------------------------------------------
    # peer-assisted delivery tier
    # ------------------------------------------------------------------
    def enable_peer_tier(
        self,
        *,
        lease_ttl_s: Optional[float] = None,
        cache_segments: Optional[int] = None,
        max_concurrent_serves: Optional[int] = None,
    ) -> "PeerRegistry":
        """Switch on the peer-assisted delivery tier (:mod:`repro.cdn.peers`).

        Builds a :class:`~repro.cdn.peers.PeerRegistry` over the
        allocation fabric and this deployment's engine, installs it on
        the allocation tier (single server or sharded router — the
        fabric is shared either way), and wires every current and future
        CDN client to offer leases and bracket peer reads. Knobs default
        to the facade config's ``peer_*`` values. Idempotent: a second
        call returns the existing registry unchanged.
        """
        if self.peers is not None:
            return self.peers
        from .cdn.peers import PeerRegistry

        self.peers = PeerRegistry(
            self.server.fabric,
            self.engine,
            lease_ttl_s=lease_ttl_s
            if lease_ttl_s is not None
            else self.config.peer_lease_ttl_s,
            cache_segments=cache_segments
            if cache_segments is not None
            else self.config.peer_cache_segments,
            max_concurrent_serves=max_concurrent_serves
            if max_concurrent_serves is not None
            else self.config.peer_max_concurrent_serves,
            registry=self.obs,
        )
        self.server.set_peer_registry(self.peers)
        for client in self.clients.values():
            client.peers = self.peers
        return self.peers

    # ------------------------------------------------------------------
    # data integrity
    # ------------------------------------------------------------------
    def _stored_digest(self, node: NodeId, segment_id) -> Optional[str]:
        """Digest of the bytes ``node`` actually holds for ``segment_id``
        (the transfer client's verification source). ``None`` when the
        node is unregistered or no longer hosts the segment.

        Peer-tier coverage: when the node's *replica partition* does not
        host the segment but the peer registry holds a lease for it, the
        lease digest answers — so peer reads are digest-verified exactly
        like repository reads and a corrupt peer copy fails the transfer
        (then fails over to the repository tier)."""
        if not self.server.has_node(node):
            return None
        repo = self.server.repository(node)
        if not repo.hosts_segment(segment_id):
            if self.peers is not None:
                return self.peers.stored_digest(node, segment_id)
            return None
        return repo.stored_digest(segment_id)

    def integrity_scrubber(
        self,
        *,
        scrub_interval_s: float = 600.0,
        repair_delay_s: float = 0.0,
    ) -> "IntegrityScrubber":
        """An :class:`~repro.cdn.integrity.IntegrityScrubber` over this
        deployment: it audits every member repository against the catalog's
        content digests, quarantines rotted replicas through the allocation
        server, and triggers re-replication on the replication policy.
        Call :meth:`IntegrityScrubber.attach` with :attr:`engine` for
        periodic scrubs, or drive :meth:`IntegrityScrubber.scrub` directly.
        """
        from .cdn.integrity import IntegrityScrubber

        return IntegrityScrubber(
            self.server,
            policy=self.replication,
            scrub_interval_s=scrub_interval_s,
            repair_delay_s=repair_delay_s,
            registry=self.obs,
        )

    # ------------------------------------------------------------------
    # replica migration
    # ------------------------------------------------------------------
    def migration_engine(
        self,
        *,
        config: Optional["MigrationConfig"] = None,
        seed: SeedLike = None,
    ) -> "MigrationEngine":
        """A :class:`~repro.cdn.migration.MigrationEngine` over this
        deployment: its demand tracker ingests the shared registry's
        ``resolve`` traces, its planner reads the allocation server's
        catalog/trust/load state, and its executor moves replicas through
        the verified transfer client copy-first/retire-after. Call
        :meth:`MigrationEngine.attach` with :attr:`engine` for periodic
        cycles, or drive :meth:`MigrationEngine.run_cycle` directly.
        """
        from .cdn.migration import MigrationEngine

        return MigrationEngine(
            self.server,
            self.transfer,
            config=config,
            seed=seed,
            registry=self.obs,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def sync_usage(self) -> None:
        """Push every repository's usage snapshot into the collector."""
        for author, client in self.clients.items():
            stats = client.repository.stats()
            self.collector.report_usage(
                client.repository.node_id, stats.replica_used_bytes
            )

    def obs_snapshot(self) -> dict:
        """Serializable snapshot of the shared observability registry —
        resolve latencies, hop distributions, cache hit rates, transfer and
        repair counters, plus the trace ring (see :mod:`repro.obs`)."""
        return self.obs.snapshot()

    def dump_obs(self, path: str) -> None:
        """Write :meth:`obs_snapshot` to ``path`` as JSON (ingestable by
        :meth:`repro.metrics.MetricsCollector.ingest_obs_snapshot`)."""
        self.obs.to_json(path)
