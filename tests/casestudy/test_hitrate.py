"""Unit tests for repro.casestudy.hitrate."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError, PlacementError
from repro.ids import AuthorId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.casestudy.hitrate import HitRateEvaluator

from ..conftest import pub


@pytest.fixture
def chain_setup():
    """Training graph a-b-c-d-e; test pubs touch various authors."""
    train = Corpus(
        [
            pub("t1", 2009, "a", "b"),
            pub("t2", 2009, "b", "c"),
            pub("t3", 2010, "c", "d"),
            pub("t4", 2010, "d", "e"),
        ]
    )
    test = Corpus(
        [
            pub("x1", 2011, "a", "b"),        # 2 in-graph units
            pub("x2", 2011, "d", "newguy"),   # 1 in-graph + 1 out unit
        ]
    )
    graph = build_coauthorship_graph(train)
    return graph, test


class TestUnitAccounting:
    def test_unit_counts(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test)
        assert ev.n_test_publications == 2
        assert ev.total_units == 4  # a, b, d + newguy

    def test_pubs_without_graph_authors_ignored(self, chain_setup):
        graph, _ = chain_setup
        test = Corpus([pub("y", 2011, "ghost1", "ghost2")])
        ev = HitRateEvaluator(graph, test)
        assert ev.n_test_publications == 0
        assert ev.total_units == 0

    def test_author_on_multiple_pubs_counts_per_pub(self, chain_setup):
        graph, _ = chain_setup
        test = Corpus([pub("y1", 2011, "a", "b"), pub("y2", 2011, "a", "c")])
        ev = HitRateEvaluator(graph, test)
        assert ev.total_units == 4  # a twice, b, c


class TestEvaluation:
    def test_hop0_and_hop1_hits(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test)
        # replica at b: covers a, b, c -> hits: a, b (units), not d
        r = ev.evaluate([AuthorId("b")])
        assert r.hits == 2
        assert r.in_graph_units == 3
        assert r.out_graph_units == 1
        assert r.hit_rate == pytest.approx(2 / 3)
        assert r.raw_hit_rate == pytest.approx(2 / 4)

    def test_full_coverage(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test)
        r = ev.evaluate([AuthorId("b"), AuthorId("d")])
        assert r.hits == 3
        assert r.hit_rate == 1.0
        assert r.raw_hit_rate == pytest.approx(3 / 4)

    def test_hop_zero_threshold(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test, max_hops=0)
        r = ev.evaluate([AuthorId("a")])
        assert r.hits == 1  # only a itself

    def test_hop_two_threshold(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test, max_hops=2)
        r = ev.evaluate([AuthorId("b")])
        # covers a, b, c, d -> a, b, d units hit
        assert r.hits == 3

    def test_mean_hops(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test)
        r = ev.evaluate([AuthorId("a")])
        # unit authors: a (0 hops), b (1), d (3); weights 1 each
        assert r.mean_hops == pytest.approx((0 + 1 + 3) / 3)

    def test_mean_hops_inf_when_unreachable(self):
        train = Corpus([pub("t1", 2009, "a", "b"), pub("t2", 2009, "x", "y")])
        test = Corpus([pub("z", 2011, "x", "y")])
        graph = build_coauthorship_graph(train)
        ev = HitRateEvaluator(graph, test)
        r = ev.evaluate([AuthorId("a")])  # island with no units
        assert r.hits == 0
        assert math.isinf(r.mean_hops)

    def test_empty_placement_rejected(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test)
        with pytest.raises(PlacementError):
            ev.evaluate([])

    def test_unknown_replica_rejected(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test)
        with pytest.raises(PlacementError):
            ev.evaluate([AuthorId("ghost")])

    def test_invalid_max_hops(self, chain_setup):
        graph, test = chain_setup
        with pytest.raises(GraphError):
            HitRateEvaluator(graph, test, max_hops=-1)


class TestCoverageMask:
    def test_mask_matches_bfs(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test)
        mask = ev.coverage_mask([AuthorId("c")])
        idx = graph.node_index()
        covered = {a for a, i in idx.items() if mask[i]}
        assert covered == {"b", "c", "d"}

    def test_monotone_in_replicas(self, chain_setup):
        graph, test = chain_setup
        ev = HitRateEvaluator(graph, test)
        m1 = ev.coverage_mask([AuthorId("a")])
        m2 = ev.coverage_mask([AuthorId("a"), AuthorId("e")])
        assert (m2 | m1).sum() == m2.sum()  # m1 subset of m2
