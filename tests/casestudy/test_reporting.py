"""Unit tests for repro.casestudy.reporting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.casestudy import CaseStudyConfig, run_case_study
from repro.casestudy.reporting import (
    ascii_chart,
    curves_csv,
    panel_markdown,
    summary_text,
    table1_markdown,
)
from repro.social.generators import CorpusConfig, generate_corpus


@pytest.fixture(scope="module")
def result():
    cfg = CorpusConfig(
        n_groups=40, n_consortium=200, mega_paper_size=20,
        consortium_block_size=20, large_pubs_per_year=15,
    )
    corpus, seed_author = generate_corpus(cfg, seed=5)
    return run_case_study(
        corpus,
        seed_author,
        config=CaseStudyConfig(replica_counts=(1, 3, 5), n_runs=4),
        seed=2,
    )


class TestMarkdown:
    def test_table1_markdown(self, result):
        md = table1_markdown(result)
        lines = md.splitlines()
        assert lines[0].startswith("| graph |")
        assert len(lines) == 2 + 3  # header + sep + 3 rows
        assert "| baseline |" in md

    def test_panel_markdown_shape(self, result):
        md = panel_markdown(result.subgraphs[0])
        lines = md.splitlines()
        assert "| algorithm | 1 | 3 | 5 |" == lines[0]
        assert len(lines) == 2 + 4  # four algorithms

    def test_panel_markdown_decimals(self, result):
        md = panel_markdown(result.subgraphs[0], decimals=3)
        assert "." in md
        cell = md.splitlines()[2].split("|")[2].strip()
        assert len(cell.split(".")[-1]) == 3


class TestCsv:
    def test_rows_and_header(self, result):
        csv = curves_csv(result.subgraphs[0])
        lines = csv.splitlines()
        assert lines[0] == "algorithm,replicas,mean_hit_rate_pct,std_hit_rate_pct"
        assert len(lines) == 1 + 4 * 3  # 4 algorithms x 3 counts

    def test_values_parse_as_floats(self, result):
        csv = curves_csv(result.subgraphs[0])
        for line in csv.splitlines()[1:]:
            _, count, mean, std = line.split(",")
            assert int(count) in (1, 3, 5)
            float(mean), float(std)


class TestAsciiChart:
    def test_contains_legend_and_axis(self, result):
        chart = ascii_chart(result.subgraphs[0])
        assert "o=" in chart and "x=" in chart
        assert "+--" in chart

    def test_height_respected(self, result):
        chart = ascii_chart(result.subgraphs[0], height=6)
        # title + 6 grid rows + axis + ticks + legend
        assert len(chart.splitlines()) == 1 + 6 + 2 + 1

    def test_subset_of_algorithms(self, result):
        chart = ascii_chart(
            result.subgraphs[0], algorithms=["random", "node-degree"]
        )
        assert "o=random" in chart and "x=node-degree" in chart
        assert "community" not in chart

    def test_unknown_algorithm_rejected(self, result):
        with pytest.raises(ConfigurationError):
            ascii_chart(result.subgraphs[0], algorithms=["magic"])

    def test_min_height(self, result):
        with pytest.raises(ConfigurationError):
            ascii_chart(result.subgraphs[0], height=2)


class TestSummary:
    def test_one_line_per_panel(self, result):
        text = summary_text(result)
        assert text.count(";") == 2  # three panels joined
        assert "winner" in text


class TestResultToDict:
    def test_json_serializable(self, result):
        import json

        from repro.casestudy.reporting import result_to_dict

        doc = result_to_dict(result)
        encoded = json.dumps(doc)
        back = json.loads(encoded)
        assert back["format"] == "repro-case-study"
        assert len(back["table1"]) == 3
        assert len(back["panels"]) == 3
        panel = back["panels"][0]
        curve = panel["curves"]["community-node-degree"]
        assert curve["replica_counts"] == [1, 3, 5]
        assert len(curve["mean_hit_rate_pct"]) == 3

    def test_config_round_trips_values(self, result):
        from repro.casestudy.reporting import result_to_dict

        doc = result_to_dict(result)
        assert doc["config"]["n_runs"] == result.config.n_runs
        assert doc["config"]["placement_window"] == "complete"

    def test_infinite_hops_become_null(self, result):
        import json

        from repro.casestudy.reporting import result_to_dict

        doc = result_to_dict(result)
        json.dumps(doc)  # would fail on inf
