"""Unit tests for repro.casestudy.splits."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.casestudy.splits import split_corpus


class TestSplit:
    def test_paper_default_windows(self, tiny_corpus):
        split = split_corpus(tiny_corpus)
        assert all(2009 <= p.year <= 2010 for p in split.train)
        assert all(p.year == 2011 for p in split.test)
        assert len(split.train) == 6
        assert len(split.test) == 1

    def test_custom_windows(self, tiny_corpus):
        split = split_corpus(tiny_corpus, train_years=(2009, 2009), test_years=(2010, 2011))
        assert len(split.train) == 3
        assert len(split.test) == 4

    def test_empty_test_window_allowed(self, tiny_corpus):
        split = split_corpus(tiny_corpus, train_years=(2009, 2010), test_years=(2050, 2051))
        assert len(split.test) == 0

    def test_overlap_rejected(self, tiny_corpus):
        with pytest.raises(ConfigurationError, match="overlap"):
            split_corpus(tiny_corpus, train_years=(2009, 2010), test_years=(2010, 2011))

    def test_inverted_window_rejected(self, tiny_corpus):
        with pytest.raises(ConfigurationError):
            split_corpus(tiny_corpus, train_years=(2010, 2009))

    def test_empty_training_rejected(self, tiny_corpus):
        with pytest.raises(ConfigurationError, match="training"):
            split_corpus(tiny_corpus, train_years=(1990, 1991), test_years=(2009, 2011))

    def test_windows_recorded(self, tiny_corpus):
        split = split_corpus(tiny_corpus)
        assert split.train_years == (2009, 2010)
        assert split.test_years == (2011, 2011)
