"""Tests for repro.casestudy.experiment (the full Section VI runner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.social.generators import CorpusConfig, generate_corpus
from repro.casestudy.experiment import CaseStudyConfig, run_case_study, table1_rows


SMALL_SWEEP = CaseStudyConfig(replica_counts=(1, 3, 5), n_runs=5)


@pytest.fixture(scope="module")
def result():
    cfg = CorpusConfig(
        n_groups=60,
        n_consortium=600,
        mega_paper_size=30,
        consortium_block_size=30,
        large_pubs_per_year=30,
    )
    corpus, seed_author = generate_corpus(cfg, seed=77)
    return run_case_study(corpus, seed_author, config=SMALL_SWEEP, seed=3)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hops": -1},
            {"replica_counts": ()},
            {"replica_counts": (0, 1)},
            {"n_runs": 0},
            {"hit_max_hops": -1},
            {"placement_window": "future"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            CaseStudyConfig(**kwargs)


class TestResultStructure:
    def test_three_panels_four_curves(self, result):
        assert len(result.subgraphs) == 3
        for panel in result.subgraphs:
            assert set(panel.curves) == {
                "random",
                "node-degree",
                "community-node-degree",
                "clustering-coefficient",
            }

    def test_table1_rows(self, result):
        rows = table1_rows(result)
        assert [r[0] for r in rows] == [
            "baseline",
            "double-coauthorship",
            "number-of-authors",
        ]
        assert all(r[1] > 0 and r[3] > 0 for r in rows)

    def test_table1_strictly_shrinking(self, result):
        rows = table1_rows(result)
        assert rows[0][1] > rows[1][1] and rows[0][1] > rows[2][1]
        assert rows[0][3] > rows[1][3] and rows[0][3] > rows[2][3]

    def test_panel_lookup(self, result):
        assert result.panel("baseline").subgraph.name == "baseline"
        with pytest.raises(ConfigurationError):
            result.panel("nope")

    def test_curve_lookup(self, result):
        panel = result.subgraphs[0]
        assert panel.curve("random").algorithm == "random"
        with pytest.raises(ConfigurationError):
            panel.curve("nope")


class TestCurves:
    def test_hit_rates_are_percentages(self, result):
        for panel in result.subgraphs:
            for curve in panel.curves.values():
                assert np.all(curve.mean_hit_rate_pct >= 0)
                assert np.all(curve.mean_hit_rate_pct <= 100)

    def test_monotone_in_replica_count(self, result):
        """More replicas never reduce coverage for deterministic rankers."""
        for panel in result.subgraphs:
            for name in ("node-degree", "community-node-degree"):
                rates = panel.curves[name].mean_hit_rate_pct
                assert np.all(np.diff(rates) >= -1.0)  # tiny tie-break noise allowed

    def test_at_and_final(self, result):
        curve = result.subgraphs[0].curves["random"]
        assert curve.at(5) == curve.final
        with pytest.raises(ConfigurationError):
            curve.at(99)

    def test_gain_after(self, result):
        curve = result.subgraphs[0].curves["community-node-degree"]
        gains = curve.gain_after
        assert set(gains) == {3, 5}

    def test_deterministic_given_seed(self):
        cfg = CorpusConfig(
            n_groups=40, n_consortium=200, mega_paper_size=20,
            consortium_block_size=20, large_pubs_per_year=15,
        )
        corpus, seed_author = generate_corpus(cfg, seed=5)
        small = CaseStudyConfig(replica_counts=(2,), n_runs=3)
        a = run_case_study(corpus, seed_author, config=small, seed=9)
        b = run_case_study(corpus, seed_author, config=small, seed=9)
        for pa, pb in zip(a.subgraphs, b.subgraphs):
            for name in pa.curves:
                assert np.allclose(
                    pa.curves[name].mean_hit_rate_pct,
                    pb.curves[name].mean_hit_rate_pct,
                )


class TestPaperShape:
    """The qualitative Fig. 3 claims, on the small test corpus."""

    def test_community_beats_random_everywhere(self, result):
        for panel in result.subgraphs:
            comm = panel.curves["community-node-degree"].final
            rand = panel.curves["random"].final
            assert comm > rand

    def test_community_usually_matches_node_degree(self, result):
        """On the miniature test corpus the paper's 'community wins' claim
        is noisy; require it on a majority of panels (the full-scale claim
        is asserted by benchmarks/test_bench_fig3.py)."""
        wins = sum(
            panel.curves["community-node-degree"].final
            >= panel.curves["node-degree"].final - 1.0
            for panel in result.subgraphs
        )
        assert wins >= 2

    def test_best_algorithm_reports_winner(self, result):
        panel = result.subgraphs[0]
        best = panel.best_algorithm()
        assert panel.curves[best].final == max(c.final for c in panel.curves.values())


class TestTrainWindowVariant:
    def test_train_placement_window_runs(self):
        cfg = CorpusConfig(
            n_groups=40, n_consortium=200, mega_paper_size=20,
            consortium_block_size=20, large_pubs_per_year=15,
        )
        corpus, seed_author = generate_corpus(cfg, seed=5)
        config = CaseStudyConfig(
            replica_counts=(2,), n_runs=3, placement_window="train"
        )
        result = run_case_study(corpus, seed_author, config=config, seed=9)
        assert len(result.subgraphs) == 3

    def test_empty_inputs_rejected(self):
        cfg = CorpusConfig(
            n_groups=40, n_consortium=200, mega_paper_size=20,
            consortium_block_size=20, large_pubs_per_year=15,
        )
        corpus, seed_author = generate_corpus(cfg, seed=5)
        with pytest.raises(ConfigurationError):
            run_case_study(corpus, seed_author, heuristics=[], seed=9)
        with pytest.raises(ConfigurationError):
            run_case_study(corpus, seed_author, placements=[], seed=9)
