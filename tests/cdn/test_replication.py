"""Unit tests for repro.cdn.replication."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.content import segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.replication import ReplicationPolicy
from repro.cdn.storage import StorageRepository
from repro.sim.engine import SimulationEngine

from ..conftest import pub


@pytest.fixture
def server():
    graph = build_coauthorship_graph(
        Corpus(
            [
                pub("p1", 2009, "a", "b"),
                pub("p2", 2009, "b", "c"),
                pub("p3", 2009, "c", "d"),
            ]
        )
    )
    s = AllocationServer(graph, RandomPlacement(), seed=0)
    for author in "abcd":
        s.register_repository(
            AuthorId(author), StorageRepository(NodeId(f"node-{author}"), 10_000)
        )
    return s


class TestAudit:
    def test_healthy_system_reports_clean(self, server):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100, n_segments=2)
        server.publish_dataset(ds, n_replicas=2)
        policy = ReplicationPolicy(server)
        report = policy.audit(at=10.0)
        assert report.time == 10.0
        assert report.n_segments == 2
        assert report.mean_redundancy == 2.0
        assert report.under_replicated == 0
        assert report.lost == 0
        assert report.repaired == 0

    def test_audit_repairs_after_outage(self, server):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=2)
        server.node_offline(replicas[0].node_id)
        policy = ReplicationPolicy(server)
        report = policy.audit(at=1.0)
        assert report.repaired == 1
        assert report.under_replicated == 0

    def test_lost_segments_counted(self, server):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=1)
        server.node_offline(replicas[0].node_id)
        report = ReplicationPolicy(server).audit()
        assert report.lost == 1
        assert report.min_redundancy == 0

    def test_hot_threshold_scaling_in_audit(self, server):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=1)
        seg = ds.segments[0].segment_id
        for _ in range(10):
            server.resolve(seg, AuthorId("a"))
        policy = ReplicationPolicy(server, hot_threshold=5)
        report = policy.audit()
        assert report.repaired >= 1
        assert server.catalog.redundancy(seg) >= 2

    def test_reports_accumulate(self, server):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=1)
        policy = ReplicationPolicy(server)
        policy.audit(at=1.0)
        policy.audit(at=2.0)
        assert [r.time for r in policy.reports] == [1.0, 2.0]
        assert policy.redundancy_timeline() == [(1.0, 1.0), (2.0, 1.0)]


class TestEngineIntegration:
    def test_periodic_audits(self, server):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        engine = SimulationEngine()
        policy = ReplicationPolicy(server, audit_interval_s=100.0)
        policy.attach(engine)
        engine.run(until=350.0)
        assert [r.time for r in policy.reports] == [100.0, 200.0, 300.0]


class TestStability:
    def test_flat_redundancy_is_stable(self, server):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        policy = ReplicationPolicy(server)
        for t in range(5):
            policy.audit(at=float(t))
        assert policy.stability() == pytest.approx(1.0)

    def test_varying_redundancy_less_stable(self, server):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=3)
        policy = ReplicationPolicy(server)
        policy.audit(at=0.0)
        # knock nodes out without repairing possibilities (offline all but one)
        for r in replicas[:2]:
            server.node_offline(r.node_id)
        policy.reports.append(policy.snapshot(at=1.0))
        assert policy.stability() < 1.0

    def test_few_reports_default_stable(self, server):
        assert ReplicationPolicy(server).stability() == 1.0


class TestValidation:
    def test_bad_interval(self, server):
        with pytest.raises(ConfigurationError):
            ReplicationPolicy(server, audit_interval_s=0)

    def test_bad_threshold(self, server):
        with pytest.raises(ConfigurationError):
            ReplicationPolicy(server, hot_threshold=0)
