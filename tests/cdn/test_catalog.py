"""Unit tests for repro.cdn.catalog."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError
from repro.ids import AuthorId, DatasetId, NodeId, SegmentId
from repro.cdn.catalog import ReplicaCatalog
from repro.cdn.content import ReplicaState, segment_dataset


@pytest.fixture
def catalog():
    c = ReplicaCatalog()
    c.register_dataset(segment_dataset(DatasetId("d1"), AuthorId("o"), 100, n_segments=2))
    return c


SEG0, SEG1 = SegmentId("d1:seg0"), SegmentId("d1:seg1")


class TestDatasets:
    def test_register_and_lookup(self, catalog):
        assert catalog.dataset(DatasetId("d1")).n_segments == 2
        assert "d1" in catalog
        assert catalog.segment(SEG0).index == 0

    def test_duplicate_registration_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.register_dataset(
                segment_dataset(DatasetId("d1"), AuthorId("o"), 10)
            )

    def test_unknown_lookups_raise(self, catalog):
        with pytest.raises(CatalogError):
            catalog.dataset(DatasetId("nope"))
        with pytest.raises(CatalogError):
            catalog.segment(SegmentId("nope:seg0"))

    def test_datasets_listing(self, catalog):
        assert [d.dataset_id for d in catalog.datasets()] == ["d1"]


class TestReplicas:
    def test_create_and_lookup(self, catalog):
        r = catalog.create_replica(SEG0, NodeId("n1"))
        assert catalog.replica(r.replica_id) is r
        assert catalog.replicas_of_segment(SEG0) == [r]
        assert catalog.replicas_on_node(NodeId("n1")) == [r]

    def test_unique_ids(self, catalog):
        r1 = catalog.create_replica(SEG0, NodeId("n1"))
        r2 = catalog.create_replica(SEG0, NodeId("n2"))
        assert r1.replica_id != r2.replica_id

    def test_duplicate_host_rejected(self, catalog):
        catalog.create_replica(SEG0, NodeId("n1"))
        with pytest.raises(CatalogError, match="already hosts"):
            catalog.create_replica(SEG0, NodeId("n1"))

    def test_retired_host_can_rehost(self, catalog):
        r = catalog.create_replica(SEG0, NodeId("n1"))
        catalog.retire(r.replica_id)
        catalog.create_replica(SEG0, NodeId("n1"))  # allowed again

    def test_unknown_segment_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_replica(SegmentId("x:seg0"), NodeId("n1"))

    def test_servable_only_filter(self, catalog):
        r1 = catalog.create_replica(SEG0, NodeId("n1"))  # PENDING
        r2 = catalog.create_replica(SEG0, NodeId("n2"), state=ReplicaState.ACTIVE)
        assert catalog.replicas_of_segment(SEG0, servable_only=True) == [r2]
        assert len(catalog.replicas_of_segment(SEG0)) == 2

    def test_replicas_of_dataset(self, catalog):
        catalog.create_replica(SEG0, NodeId("n1"), state=ReplicaState.ACTIVE)
        catalog.create_replica(SEG1, NodeId("n1"), state=ReplicaState.ACTIVE)
        assert len(catalog.replicas_of_dataset(DatasetId("d1"))) == 2

    def test_nodes_hosting(self, catalog):
        catalog.create_replica(SEG0, NodeId("n1"), state=ReplicaState.ACTIVE)
        catalog.create_replica(SEG0, NodeId("n2"))  # pending, excluded
        assert catalog.nodes_hosting(SEG0) == {"n1"}


class TestStateTransitions:
    def test_activate(self, catalog):
        r = catalog.create_replica(SEG0, NodeId("n1"))
        catalog.activate(r.replica_id)
        assert r.state is ReplicaState.ACTIVE

    def test_mark_stale_and_reactivate(self, catalog):
        r = catalog.create_replica(SEG0, NodeId("n1"), state=ReplicaState.ACTIVE)
        catalog.mark_stale(r.replica_id)
        assert not r.servable
        catalog.activate(r.replica_id)
        assert r.servable

    def test_retired_is_terminal(self, catalog):
        r = catalog.create_replica(SEG0, NodeId("n1"))
        catalog.retire(r.replica_id)
        with pytest.raises(CatalogError):
            catalog.activate(r.replica_id)
        with pytest.raises(CatalogError):
            catalog.mark_stale(r.replica_id)

    def test_retired_excluded_from_lookups(self, catalog):
        r = catalog.create_replica(SEG0, NodeId("n1"))
        catalog.retire(r.replica_id)
        assert catalog.replicas_of_segment(SEG0) == []
        assert catalog.replicas_on_node(NodeId("n1")) == []
        assert catalog.total_replicas() == 0


class TestAggregates:
    def test_redundancy(self, catalog):
        catalog.create_replica(SEG0, NodeId("n1"), state=ReplicaState.ACTIVE)
        catalog.create_replica(SEG0, NodeId("n2"), state=ReplicaState.ACTIVE)
        catalog.create_replica(SEG0, NodeId("n3"))  # pending
        assert catalog.redundancy(SEG0) == 2

    def test_under_replicated_sorted_most_degraded_first(self, catalog):
        catalog.create_replica(SEG1, NodeId("n1"), state=ReplicaState.ACTIVE)
        under = catalog.under_replicated(2)
        assert under == [(SEG0, 0), (SEG1, 1)]

    def test_under_replicated_empty_when_satisfied(self, catalog):
        for seg in (SEG0, SEG1):
            catalog.create_replica(seg, NodeId("n1"), state=ReplicaState.ACTIVE)
        assert catalog.under_replicated(1) == []

    def test_iter_replicas_excludes_retired(self, catalog):
        r = catalog.create_replica(SEG0, NodeId("n1"))
        catalog.create_replica(SEG0, NodeId("n2"))
        catalog.retire(r.replica_id)
        assert len(list(catalog.iter_replicas())) == 1


class TestUnregister:
    def test_unregister_clean_dataset(self, catalog):
        catalog.unregister_dataset(DatasetId("d1"))
        assert "d1" not in catalog
        with pytest.raises(CatalogError):
            catalog.segment(SEG0)

    def test_unregister_with_live_replica_refused(self, catalog):
        catalog.create_replica(SEG0, NodeId("n1"))
        with pytest.raises(CatalogError, match="live replicas"):
            catalog.unregister_dataset(DatasetId("d1"))

    def test_unregister_after_retiring_all(self, catalog):
        r = catalog.create_replica(SEG0, NodeId("n1"))
        catalog.retire(r.replica_id)
        catalog.unregister_dataset(DatasetId("d1"))
        assert "d1" not in catalog

    def test_reregister_after_unregister(self, catalog):
        catalog.unregister_dataset(DatasetId("d1"))
        catalog.register_dataset(
            segment_dataset(DatasetId("d1"), AuthorId("o"), 50)
        )
        assert "d1" in catalog
