"""Liveness-aware discovery and transfer failover (server + client)."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId, TransferId
from repro.obs import Registry
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.client import CDNClient
from repro.cdn.content import segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.replication import ReplicationPolicy
from repro.cdn.storage import StorageRepository
from repro.cdn.transfer import TransferClient, TransferResult
from repro.sim.engine import SimulationEngine
from repro.sim.failures import FailureInjector
from repro.sim.network import GeoPoint, NetworkModel

from ..conftest import pub

AUTHORS = ("alice", "bob", "carol", "dave", "erin")


@pytest.fixture
def graph():
    pubs = [
        pub("p1", 2009, "alice", "bob", "carol"),
        pub("p2", 2010, "carol", "dave", "erin"),
        pub("p3", 2010, "alice", "bob"),
        pub("p4", 2010, "dave", "erin"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


@pytest.fixture
def rig(graph):
    """Server with five repos, one 3-replica dataset, isolated registry."""
    registry = Registry()
    server = AllocationServer(graph, RandomPlacement(), seed=0, registry=registry)
    for a in AUTHORS:
        server.register_repository(AuthorId(a), StorageRepository(NodeId(a), 10_000))
    ds = segment_dataset(DatasetId("d"), AuthorId("alice"), 1000)
    server.publish_dataset(ds, n_replicas=3)
    seg = ds.segments[0].segment_id
    hosts = {r.node_id for r in server.catalog.replicas_of_segment(seg)}
    return registry, server, seg, hosts


class TestLivenessOracle:
    def test_oracle_filters_discovery(self, rig):
        _, server, seg, hosts = rig
        dead = next(iter(sorted(hosts)))
        server.set_liveness_oracle(lambda n: n != dead)
        for _ in range(10):
            assert server.resolve(seg, AuthorId("alice")).replica.node_id != dead

    def test_is_online_consults_oracle(self, rig):
        _, server, _, hosts = rig
        dead = next(iter(hosts))
        assert server.is_online(dead)
        server.set_liveness_oracle(lambda n: n != dead)
        assert not server.is_online(dead)
        server.set_liveness_oracle(None)
        assert server.is_online(dead)

    def test_all_hosts_dead_raises(self, rig):
        registry, server, seg, hosts = rig
        server.set_liveness_oracle(lambda n: n not in hosts)
        with pytest.raises(CatalogError, match="no servable replica"):
            server.resolve(seg, AuthorId("alice"))
        snap = registry.snapshot()
        assert snap["counters"]["alloc.resolve.failed"]["value"] == 1

    def test_non_callable_oracle_rejected(self, rig):
        _, server, _, _ = rig
        with pytest.raises(ConfigurationError):
            server.set_liveness_oracle("not-a-callable")

    def test_repair_avoids_oracle_dead_hosts(self, rig):
        _, server, seg, hosts = rig
        dead = next(iter(sorted(hosts)))
        server.set_liveness_oracle(lambda n: n != dead)
        server.migrate_node(dead)
        for r in server.catalog.replicas_of_segment(seg, servable_only=True):
            assert r.node_id != dead


class TestResolveCandidates:
    def test_ranked_and_live_only(self, rig):
        _, server, seg, hosts = rig
        ranked = server.resolve_candidates(seg, AuthorId("alice"))
        assert [c.replica.node_id for c in ranked[:1]] == [
            server.resolve(seg, AuthorId("alice")).replica.node_id
        ]
        assert {c.replica.node_id for c in ranked} == hosts
        dead = ranked[0].replica.node_id
        server.set_liveness_oracle(lambda n: n != dead)
        assert dead not in {
            c.replica.node_id for c in server.resolve_candidates(seg, AuthorId("alice"))
        }

    def test_limit(self, rig):
        _, server, seg, _ = rig
        assert len(server.resolve_candidates(seg, AuthorId("alice"), limit=2)) == 2

    def test_pure_query_records_nothing(self, rig):
        _, server, seg, _ = rig
        before = {n: server.repository(n).reads_served for n in AUTHORS}
        server.resolve_candidates(seg, AuthorId("alice"))
        after = {n: server.repository(n).reads_served for n in AUTHORS}
        assert before == after

    def test_record_failover_counts(self, rig):
        registry, server, seg, _ = rig
        server.record_failover(
            seg, AuthorId("alice"), from_node=NodeId("bob"), to_node=NodeId("carol")
        )
        snap = registry.snapshot()
        assert snap["counters"]["alloc.resolve.failover"]["value"] == 1


class FailFromTransfer(TransferClient):
    """Transfer stub that exhausts its retries for designated source nodes."""

    def __init__(self, network, bad_sources, **kwargs):
        super().__init__(network, **kwargs)
        self.bad_sources = set(bad_sources)
        self.sources_tried: list = []

    def execute(self, request):
        self.sources_tried.append(request.source)
        if request.source in self.bad_sources:
            return TransferResult(
                transfer_id=TransferId(f"fail-{len(self.sources_tried)}"),
                request=request,
                ok=False,
                duration_s=5.0,
                attempts=self.retry.max_attempts,
            )
        return super().execute(request)


def make_client(server, registry, requester, bad_sources):
    network = NetworkModel(base_latency_s=0.01, default_bandwidth_bps=8e6)
    for a in AUTHORS:
        network.add_node(NodeId(a), GeoPoint(0.0, float(AUTHORS.index(a))))
    transfer = FailFromTransfer(network, bad_sources, registry=registry)
    repo = server.repository(NodeId(requester))
    return CDNClient(AuthorId(requester), repo, server, transfer), transfer


class TestClientFailover:
    def _requester(self, hosts):
        """An author whose own repo does not host the segment."""
        return next(a for a in AUTHORS if NodeId(a) not in hosts)

    def test_failed_primary_fails_over_to_backup(self, rig):
        registry, server, seg, hosts = rig
        requester = self._requester(hosts)
        primary = server.resolve_candidates(seg, AuthorId(requester))[0]
        bad = primary.replica.node_id
        client, transfer = make_client(server, registry, requester, {bad})
        outcome = client.access_segment(seg)
        assert outcome.ok
        assert client.stats.failovers == 1
        assert transfer.sources_tried[0] == bad
        assert transfer.sources_tried[1] != bad
        # the failed source's full cost lands in the outcome duration
        assert outcome.duration_s > 5.0
        snap = registry.snapshot()
        assert snap["counters"]["alloc.resolve.failover"]["value"] == 1

    def test_all_sources_failing_reports_failure(self, rig):
        registry, server, seg, hosts = rig
        requester = self._requester(hosts)
        client, transfer = make_client(server, registry, requester, hosts)
        outcome = client.access_segment(seg)
        assert not outcome.ok
        assert client.stats.failed == 1
        assert client.stats.failovers == len(hosts) - 1
        assert set(transfer.sources_tried) == hosts
        snap = registry.snapshot()
        assert snap["counters"]["alloc.resolve.failover"]["value"] == len(hosts) - 1

    def test_backup_read_is_recorded_on_server(self, rig):
        registry, server, seg, hosts = rig
        requester = self._requester(hosts)
        ranked = server.resolve_candidates(seg, AuthorId(requester))
        bad, backup = ranked[0].replica.node_id, ranked[1].replica.node_id
        reads_before = server.repository(backup).reads_served
        client, _ = make_client(server, registry, requester, {bad})
        assert client.access_segment(seg).ok
        assert server.repository(backup).reads_served == reads_before + 1


class TestInjectorServerWiring:
    def _wired(self, rig, *, policy=False, repair_delay_s=0.0):
        registry, server, seg, hosts = rig
        engine = SimulationEngine(registry=registry)
        nodes = [NodeId(a) for a in AUTHORS]
        injector = FailureInjector(engine, nodes, seed=0)
        pol = (
            ReplicationPolicy(server, registry=registry) if policy else None
        )
        injector.attach_server(server, policy=pol, repair_delay_s=repair_delay_s)
        return registry, server, engine, injector, seg, hosts, pol

    def test_oracle_installed(self, rig):
        _, server, engine, injector, seg, hosts, _ = self._wired(rig)
        victim = next(iter(sorted(hosts)))
        injector.crash(victim, at=1.0)
        engine.run()
        assert not server.is_online(victim)

    def test_crash_migrates_replicas(self, rig):
        _, server, engine, injector, seg, hosts, _ = self._wired(rig)
        victim = next(iter(sorted(hosts)))
        injector.crash(victim, at=1.0)
        engine.run()
        live_hosts = {
            r.node_id
            for r in server.catalog.replicas_of_segment(seg, servable_only=True)
        }
        assert victim not in live_hosts
        assert len(live_hosts) == 3  # budget restored elsewhere

    def test_outage_toggles_offline_online(self, rig):
        _, server, engine, injector, seg, hosts, _ = self._wired(rig)
        victim = next(iter(sorted(hosts)))
        injector.outage(victim, start=1.0, duration=5.0)
        engine.run(until=2.0)
        assert not server.is_online(victim)
        engine.run()
        assert server.is_online(victim)

    def test_disruptions_schedule_repair_audits(self, rig):
        _, server, engine, injector, seg, hosts, pol = self._wired(
            rig, policy=True, repair_delay_s=2.0
        )
        victim = next(iter(sorted(hosts)))
        injector.crash(victim, at=1.0)
        engine.run()
        assert pol.reports and pol.reports[0].time == 3.0
        assert pol.reports[0].under_replicated == 0

    def test_invalid_repair_delay_rejected(self, rig):
        server = rig[1]
        engine = SimulationEngine()
        injector = FailureInjector(engine, [NodeId(a) for a in AUTHORS], seed=0)
        with pytest.raises(ConfigurationError):
            injector.attach_server(server, repair_delay_s=-1.0)
