"""Shared migration-target eligibility rule (repro.cdn.allocation).

Regression coverage for the rule `repair` / `migrate_node` and the
migration planner all share: a target must be trusted, live, and not
already holding *any* non-retired replica of the segment — quarantined
and stale entries block a node exactly like active ones.
"""

from __future__ import annotations

import pytest

from repro.errors import CatalogError
from repro.ids import AuthorId, DatasetId, NodeId
from repro.obs import Registry
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.content import segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.storage import StorageRepository

from ..conftest import pub

AUTHORS = ("alice", "bob", "carol", "dave", "erin")


@pytest.fixture
def rig():
    graph = build_coauthorship_graph(Corpus([pub("p1", 2010, *AUTHORS)]))
    registry = Registry()
    server = AllocationServer(graph, RandomPlacement(), seed=0, registry=registry)
    for a in AUTHORS:
        server.register_repository(AuthorId(a), StorageRepository(NodeId(a), 10_000))
    ds = segment_dataset(DatasetId("d"), AuthorId("alice"), 1000)
    server.publish_dataset(ds, n_replicas=2)
    seg = ds.segments[0].segment_id
    hosts = sorted(r.node_id for r in server.catalog.replicas_of_segment(seg))
    return graph, server, seg, hosts


class TestEligibleTargets:
    def test_excludes_current_holders(self, rig):
        _, server, seg, hosts = rig
        targets = server.eligible_migration_targets(seg)
        assert {NodeId(str(a)) for a in targets}.isdisjoint(set(hosts))
        assert len(targets) == len(AUTHORS) - len(hosts)

    def test_quarantined_holder_stays_excluded(self, rig):
        _, server, seg, hosts = rig
        rep = server.catalog.replicas_of_segment(seg)[0]
        server.quarantine_replica(rep.replica_id)
        # no longer servable, but the node still holds a non-retired entry
        assert AuthorId(str(rep.node_id)) not in server.eligible_migration_targets(seg)

    def test_offline_nodes_excluded(self, rig):
        _, server, seg, hosts = rig
        free = next(AuthorId(a) for a in AUTHORS if NodeId(a) not in hosts)
        server.set_liveness_oracle(lambda n: n != NodeId(str(free)))
        assert free not in server.eligible_migration_targets(seg)

    def test_untrusted_authors_excluded_after_swap(self, rig):
        graph, server, seg, hosts = rig
        free = next(AuthorId(a) for a in AUTHORS if NodeId(a) not in hosts)
        server.graph = graph.subgraph([a for a in graph.nodes() if a != free])
        assert free not in server.eligible_migration_targets(seg)
        assert server.untrusted_hosts() == [NodeId(str(free))]

    def test_unknown_segment_raises(self, rig):
        _, server, _, _ = rig
        with pytest.raises(CatalogError):
            server.eligible_migration_targets("no-such-segment")


class TestRepairUsesTheSharedRule:
    def test_repair_never_repicks_a_quarantined_holder(self, rig):
        _, server, seg, hosts = rig
        rep = server.catalog.replicas_of_segment(seg)[0]
        server.quarantine_replica(rep.replica_id)
        created = server.repair()
        assert len(created) == 1
        assert created[0].node_id != rep.node_id

    def test_migrate_node_replacements_avoid_holders(self, rig):
        _, server, seg, hosts = rig
        moved = server.migrate_node(hosts[0])
        assert moved
        for r in moved:
            assert r.node_id not in hosts

    def test_repair_after_trust_swap_places_only_on_trusted(self, rig):
        graph, server, seg, hosts = rig
        gone = AuthorId(str(hosts[0]))
        server.graph = graph.subgraph([a for a in graph.nodes() if a != gone])
        server.set_liveness_oracle(lambda n: n != hosts[0])
        created = server.repair()  # must not crash on the shrunk graph
        assert created
        for r in created:
            assert server.author_of(r.node_id) in server.graph
