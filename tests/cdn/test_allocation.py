"""Unit tests for repro.cdn.allocation (the allocation server)."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, ConfigurationError, PlacementError
from repro.ids import AuthorId, DatasetId, NodeId, SegmentId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.content import ReplicaState, segment_dataset
from repro.cdn.placement import NodeDegreePlacement, RandomPlacement
from repro.cdn.storage import StorageRepository

from ..conftest import pub


@pytest.fixture
def line_graph():
    """a - b - c - d - e (b..d increasing connectivity in the middle)."""
    pubs = [
        pub("p1", 2009, "a", "b"),
        pub("p2", 2009, "b", "c"),
        pub("p3", 2009, "c", "d"),
        pub("p4", 2009, "d", "e"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


def make_server(graph, authors=None, capacity=10_000, placement=None, seed=0):
    server = AllocationServer(graph, placement or RandomPlacement(), seed=seed)
    for a in authors or graph.nodes():
        server.register_repository(AuthorId(a), StorageRepository(NodeId(f"node-{a}"), capacity))
    return server


class TestRegistration:
    def test_register_and_lookup(self, line_graph):
        server = make_server(line_graph, authors=["a", "b"])
        assert server.n_nodes == 2
        assert server.node_of(AuthorId("a")) == "node-a"
        assert server.author_of(NodeId("node-a")) == "a"
        assert set(server.registered_authors()) == {"a", "b"}

    def test_non_member_rejected(self, line_graph):
        server = AllocationServer(line_graph, RandomPlacement())
        with pytest.raises(ConfigurationError, match="trusted"):
            server.register_repository(
                AuthorId("stranger"), StorageRepository(NodeId("n"), 100)
            )

    def test_double_contribution_rejected(self, line_graph):
        server = make_server(line_graph, authors=["a"])
        with pytest.raises(ConfigurationError):
            server.register_repository(
                AuthorId("a"), StorageRepository(NodeId("other"), 100)
            )

    def test_unknown_lookups_raise(self, line_graph):
        server = make_server(line_graph, authors=["a"])
        with pytest.raises(ConfigurationError):
            server.node_of(AuthorId("zzz"))
        with pytest.raises(ConfigurationError):
            server.repository(NodeId("zzz"))


class TestPublish:
    def test_places_requested_replicas(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 1000, n_segments=2)
        replicas = server.publish_dataset(ds, n_replicas=3)
        # 2 segments x 3 replicas
        assert len(replicas) == 6
        for seg in ds.segments:
            assert server.catalog.redundancy(seg.segment_id) == 3

    def test_replicas_are_active_and_stored(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        (replica, *rest) = server.publish_dataset(ds, n_replicas=1)
        assert replica.state is ReplicaState.ACTIVE
        assert server.repository(replica.node_id).hosts_segment(ds.segments[0].segment_id)

    def test_budget_capped_by_hosts(self, line_graph):
        server = make_server(line_graph, authors=["a", "b"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=10)
        assert len(replicas) == 2

    def test_capacity_skips_full_hosts(self, line_graph):
        server = AllocationServer(line_graph, NodeDegreePlacement(), seed=0)
        # two tiny repos, one big one
        server.register_repository(AuthorId("b"), StorageRepository(NodeId("n-b"), 10))
        server.register_repository(AuthorId("c"), StorageRepository(NodeId("n-c"), 10))
        server.register_repository(AuthorId("d"), StorageRepository(NodeId("n-d"), 10_000))
        ds = segment_dataset(DatasetId("d"), AuthorId("b"), 1000)
        replicas = server.publish_dataset(ds, n_replicas=1)
        assert replicas[0].node_id == "n-d"

    def test_no_capacity_anywhere_raises(self, line_graph):
        server = make_server(line_graph, capacity=10)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 1000)
        with pytest.raises(PlacementError, match="no registered host"):
            server.publish_dataset(ds, n_replicas=1)

    def test_no_online_hosts_raises(self, line_graph):
        server = make_server(line_graph, authors=["a"])
        server.node_offline(NodeId("node-a"))
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        with pytest.raises(PlacementError, match="no online"):
            server.publish_dataset(ds)


class TestResolve:
    def test_prefers_socially_closest(self, line_graph):
        server = make_server(line_graph, placement=RandomPlacement())
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.catalog.register_dataset(ds)
        server._dataset_budget[ds.dataset_id] = 2
        seg = ds.segments[0].segment_id
        # replicas at a and e; requester c is 2 hops from both -> tie;
        # requester b is 1 hop from a
        server.repository(NodeId("node-a")).store_replica(seg, 100)
        server.catalog.create_replica(seg, NodeId("node-a"), state=ReplicaState.ACTIVE)
        server.repository(NodeId("node-e")).store_replica(seg, 100)
        server.catalog.create_replica(seg, NodeId("node-e"), state=ReplicaState.ACTIVE)
        resolved = server.resolve(seg, AuthorId("b"))
        assert resolved.replica.node_id == "node-a"
        assert resolved.social_hops == 1

    def test_offline_replicas_skipped(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        first = server.resolve(seg, AuthorId("a")).replica
        server.node_offline(first.node_id)
        second = server.resolve(seg, AuthorId("a")).replica
        assert second.node_id != first.node_id

    def test_no_replica_raises(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.catalog.register_dataset(ds)
        with pytest.raises(CatalogError):
            server.resolve(ds.segments[0].segment_id, AuthorId("a"))

    def test_access_recorded(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=1)
        seg = ds.segments[0].segment_id
        resolved = server.resolve(seg, AuthorId("a"))
        assert resolved.replica.access_count == 1

    def test_requester_outside_graph_still_served(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=1)
        resolved = server.resolve(ds.segments[0].segment_id, AuthorId("stranger"))
        assert resolved.social_hops is None


class TestLiveness:
    def test_offline_marks_replicas_stale(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        (replica,) = server.publish_dataset(ds, n_replicas=1)
        n = server.node_offline(replica.node_id)
        assert n == 1
        assert replica.state is ReplicaState.STALE

    def test_online_reactivates(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        (replica,) = server.publish_dataset(ds, n_replicas=1)
        server.node_offline(replica.node_id)
        n = server.node_online(replica.node_id)
        assert n == 1
        assert replica.servable

    def test_is_online(self, line_graph):
        server = make_server(line_graph, authors=["a"])
        assert server.is_online(NodeId("node-a"))
        server.node_offline(NodeId("node-a"))
        assert not server.is_online(NodeId("node-a"))


class TestRepair:
    def test_under_replicated_detects_offline(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=2)
        server.node_offline(replicas[0].node_id)
        under = server.under_replicated()
        assert under == [(ds.segments[0].segment_id, 1)]

    def test_repair_restores_budget(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=2)
        server.node_offline(replicas[0].node_id)
        created = server.repair()
        assert len(created) == 1
        assert server.under_replicated() == []

    def test_repair_skips_lost_segments(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=1)
        server.node_offline(replicas[0].node_id)
        assert server.repair() == []  # no live source
        assert server.under_replicated() == [(ds.segments[0].segment_id, 0)]

    def test_migrate_node_moves_replicas(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=2)
        victim = replicas[0].node_id
        created = server.migrate_node(victim)
        assert len(created) == 1
        assert replicas[0].state is ReplicaState.RETIRED
        assert not server.repository(victim).hosts_segment(ds.segments[0].segment_id)
        assert server.under_replicated() == []


class TestDemand:
    def test_hot_segments_ranked(self, line_graph):
        server = make_server(line_graph)
        d1 = segment_dataset(DatasetId("d1"), AuthorId("a"), 100)
        d2 = segment_dataset(DatasetId("d2"), AuthorId("a"), 100)
        server.publish_dataset(d1, n_replicas=1)
        server.publish_dataset(d2, n_replicas=1)
        for _ in range(5):
            server.resolve(d1.segments[0].segment_id, AuthorId("a"))
        server.resolve(d2.segments[0].segment_id, AuthorId("a"))
        hot = server.hot_segments(threshold=2)
        assert hot == [(d1.segments[0].segment_id, 5)]

    def test_scale_hot_adds_replicas(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=1)
        seg = ds.segments[0].segment_id
        for _ in range(10):
            server.resolve(seg, AuthorId("a"))
        created = server.scale_hot(threshold=5, extra=2)
        assert len(created) == 2
        assert server.catalog.redundancy(seg) == 3

    def test_scale_hot_noop_below_threshold(self, line_graph):
        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=1)
        assert server.scale_hot(threshold=5) == []

    def test_scale_hot_invalid_extra(self, line_graph):
        server = make_server(line_graph)
        with pytest.raises(ConfigurationError):
            server.scale_hot(threshold=1, extra=0)


class TestPartitionedPublish:
    def _partitioned_setup(self, line_graph):
        from repro.cdn.partitioning import SocialPartitioner

        server = make_server(line_graph)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 400, n_segments=4)
        partitioner = SocialPartitioner(line_graph, seed=0)
        accesses = [
            (AuthorId("a"), ds.segments[0].segment_id),
            (AuthorId("b"), ds.segments[0].segment_id),
            (AuthorId("e"), ds.segments[1].segment_id),
        ]
        assignment = partitioner.partition(
            [s.segment_id for s in ds.segments], accesses
        )
        return server, ds, assignment

    def test_segments_land_on_community_hosts(self, line_graph):
        server, ds, assignment = self._partitioned_setup(line_graph)
        replicas = server.publish_dataset_partitioned(ds, assignment)
        by_segment = {}
        for r in replicas:
            by_segment.setdefault(r.segment_id, []).append(r.node_id)
        for seg in ds.segments:
            seg_id = seg.segment_id
            host = assignment.host_of_segment[seg_id]
            assert server.node_of(host) in by_segment[seg_id]

    def test_extra_replicas_added(self, line_graph):
        server, ds, assignment = self._partitioned_setup(line_graph)
        server.publish_dataset_partitioned(ds, assignment, extra_replicas=1)
        for seg in ds.segments:
            assert server.catalog.redundancy(seg.segment_id) == 2

    def test_offline_community_host_falls_back(self, line_graph):
        server, ds, assignment = self._partitioned_setup(line_graph)
        victim_author = assignment.host_of_segment[ds.segments[0].segment_id]
        server.node_offline(server.node_of(victim_author))
        replicas = server.publish_dataset_partitioned(ds, assignment)
        for r in replicas:
            assert server.is_online(r.node_id)

    def test_no_capacity_raises(self, line_graph):
        from repro.cdn.partitioning import SocialPartitioner

        server = make_server(line_graph, capacity=10)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 4000, n_segments=4)
        assignment = SocialPartitioner(line_graph, seed=0).partition(
            [s.segment_id for s in ds.segments]
        )
        with pytest.raises(PlacementError):
            server.publish_dataset_partitioned(ds, assignment)
        # rollback: the failed publication leaves no catalog or storage trace
        assert "d" not in server.catalog
        for a in line_graph.nodes():
            assert server.repository(NodeId(f"node-{a}")).replica_used_bytes == 0


class TestPublicationRollback:
    def test_failed_publish_leaves_no_trace(self, line_graph):
        server = make_server(line_graph, capacity=10)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 1000)
        with pytest.raises(PlacementError):
            server.publish_dataset(ds, n_replicas=1)
        # dataset fully rolled back: can be republished after fixing capacity
        assert "d" not in server.catalog
        for a in line_graph.nodes():
            assert server.repository(NodeId(f"node-{a}")).replica_used_bytes == 0

    def test_partial_multisegment_failure_rolls_back_all(self, line_graph):
        # replica quota per node = 600: segment 0 (500) fits anywhere, but
        # segment 1 (700) fits nowhere -> the whole publication rolls back
        server = make_server(line_graph, capacity=1200)
        from repro.cdn.content import DataSegment, Dataset

        ds = Dataset(
            dataset_id=DatasetId("mix"),
            owner=AuthorId("a"),
            size_bytes=1200,
            segments=(
                DataSegment(SegmentId("mix:seg0"), DatasetId("mix"), 0, 500),
                DataSegment(SegmentId("mix:seg1"), DatasetId("mix"), 1, 700),
            ),
        )
        with pytest.raises(PlacementError):
            server.publish_dataset(ds, n_replicas=1)
        assert "mix" not in server.catalog
        used = sum(
            server.repository(NodeId(f"node-{a}")).replica_used_bytes
            for a in line_graph.nodes()
        )
        assert used == 0  # segment 0's placement was rolled back too
