"""Regression tests for the allocation-server bugfix round.

One test class per fixed bug:

* hop-cache invalidation (membership changes and graph swaps used to serve
  stale distances forever);
* offline/online ``at:`` timestamps (used to be silently dropped, making
  per-node downtime impossible to integrate into availability);
* explicit replica budgets (``under_replicated`` used to fall back to a
  silent budget of 1);
* ``resolve`` load hoisting (``repo.stats()`` used to run for every replica
  on every comparison) and stable hops -> load -> node-id tie-breaking;
* publication rollback residue and offline -> online replica reactivation.
"""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, ConfigurationError, PlacementError
from repro.ids import AuthorId, DatasetId, NodeId
from repro.metrics import node_availability, server_availability
from repro.obs import Registry
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.content import ReplicaState, segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.storage import StorageRepository

from ..conftest import pub


def graph_of(*pubs_):
    return build_coauthorship_graph(Corpus(list(pubs_)))


def make_server(graph, authors, capacity=10_000, seed=0, registry=None):
    server = AllocationServer(
        graph, RandomPlacement(), seed=seed, registry=registry or Registry()
    )
    for a in authors:
        server.register_repository(
            AuthorId(a), StorageRepository(NodeId(f"node-{a}"), capacity)
        )
    return server


class TestHopCacheInvalidation:
    def test_graph_swap_invalidates_outside_requester(self):
        """A requester outside the graph must not stay cached as unreachable
        after the trusted graph grows to include them."""
        small = graph_of(pub("p1", 2009, "a", "b"))
        server = make_server(small, ["a", "b"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id

        resolved = server.resolve(seg, AuthorId("c"))
        assert resolved.social_hops is None  # c unknown to the small graph

        server.graph = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"))
        resolved = server.resolve(seg, AuthorId("c"))
        assert resolved.social_hops == 1  # c - b is now one hop

    def test_register_repository_invalidates(self):
        g = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"))
        reg = Registry()
        server = make_server(g, ["a", "b"], registry=reg)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        server.resolve(seg, AuthorId("a"))  # populate the index
        assert server.hop_index.is_cached(AuthorId("a"))
        before = reg.counter("alloc.hop_index.partial_invalidations").value
        server.register_repository(
            AuthorId("c"), StorageRepository(NodeId("node-c"), 10_000)
        )
        # c is connected to the cached source a, so a's entry is dropped —
        # selectively, not via a full flush
        assert not server.hop_index.is_cached(AuthorId("a"))
        assert reg.counter("alloc.hop_index.partial_invalidations").value == before + 1
        assert reg.counter("alloc.hop_cache.invalidations").value == 0

    def test_register_disconnected_keeps_cached_sources(self):
        """Registering a node with no social path to any cached source must
        keep their entries (the over-invalidation regression)."""
        g = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "x", "y"))
        reg = Registry()
        server = make_server(g, ["a", "b"], registry=reg)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        server.resolve(seg, AuthorId("a"))  # cache source a
        assert server.hop_index.is_cached(AuthorId("a"))
        server.register_repository(
            AuthorId("x"), StorageRepository(NodeId("node-x"), 10_000)
        )
        # x lives in the {x, y} island: a's cached distances are untouched
        assert server.hop_index.is_cached(AuthorId("a"))
        assert reg.counter("alloc.hop_index.partial_invalidations").value == 0
        server.resolve(seg, AuthorId("a"))
        assert reg.counter("alloc.hop_cache.hits").value == 1

    def test_hit_miss_counters(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        reg = Registry()
        server = make_server(g, ["a", "b"], registry=reg)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        server.resolve(seg, AuthorId("a"))
        server.resolve(seg, AuthorId("a"))
        server.resolve(seg, AuthorId("b"))
        assert reg.counter("alloc.hop_cache.misses").value == 2  # a and b
        assert reg.counter("alloc.hop_cache.hits").value == 1


class TestStateTransitionTimestamps:
    def test_transitions_recorded_with_at(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        server = make_server(g, ["a", "b"])
        node = NodeId("node-a")
        server.node_offline(node, at=10.0)
        server.node_online(node, at=30.0)
        assert server.state_transitions(node) == [(10.0, "offline"), (30.0, "online")]

    def test_duplicate_transitions_are_noops(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        server = make_server(g, ["a", "b"])
        node = NodeId("node-a")
        assert server.node_online(node, at=1.0) == 0  # already online
        server.node_offline(node, at=10.0)
        assert server.node_offline(node, at=20.0) == 0  # already offline
        assert server.state_transitions(node) == [(10.0, "offline")]

    def test_downtime_integrates_into_availability(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        server = make_server(g, ["a", "b"])
        node = NodeId("node-a")
        server.node_offline(node, at=10.0)
        server.node_online(node, at=30.0)
        # down 20s of 40s -> 50% for node-a; node-b always up -> mean 75%
        assert node_availability(server.state_transitions(node), 40.0) == 0.5
        assert server_availability(server, 40.0) == pytest.approx(0.75)

    def test_migrate_records_departure_time(self):
        g = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"))
        server = make_server(g, ["a", "b", "c"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        victim = server.catalog.nodes_hosting(ds.segments[0].segment_id).pop()
        server.migrate_node(victim, at=55.0)
        assert server.state_transitions(victim) == [(55.0, "offline")]
        # departure is terminal downtime for the availability metric
        assert node_availability(server.state_transitions(victim), 110.0) == 0.5

    def test_availability_log_covers_all_nodes(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        server = make_server(g, ["a", "b"])
        server.node_offline(NodeId("node-a"), at=5.0)
        log = server.availability_log()
        assert set(log) == {NodeId("node-a"), NodeId("node-b")}
        assert log[NodeId("node-b")] == []

    def test_unknown_node_rejected(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        server = make_server(g, ["a"])
        with pytest.raises(ConfigurationError):
            server.state_transitions(NodeId("nope"))


def assignment_to(ds, author):
    """A PartitionAssignment suggesting one host for every segment."""
    from repro.cdn.partitioning import PartitionAssignment

    return PartitionAssignment(
        community_of_segment={s.segment_id: 0 for s in ds.segments},
        host_of_segment={s.segment_id: AuthorId(author) for s in ds.segments},
        communities=[{AuthorId(author)}],
    )


class TestExplicitBudgets:
    def test_partitioned_publish_records_budget(self):
        g = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"))
        server = make_server(g, ["a", "b", "c"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100, n_segments=2)
        server.publish_dataset_partitioned(ds, assignment_to(ds, "a"), extra_replicas=1)
        assert server.replica_budget(ds.dataset_id) == 2
        assert server.under_replicated() == []

    def test_backdoor_dataset_backfilled_loudly(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        reg = Registry()
        server = make_server(g, ["a", "b"], registry=reg)
        ds = segment_dataset(DatasetId("ghost"), AuthorId("a"), 100)
        server.catalog.register_dataset(ds)  # behind the server's back
        assert reg.counter("alloc.budget.backfilled").value == 0
        under = server.under_replicated()
        assert (ds.segments[0].segment_id, 0) in under
        assert reg.counter("alloc.budget.backfilled").value == 1
        # backfill is sticky: no double counting
        server.under_replicated()
        assert reg.counter("alloc.budget.backfilled").value == 1

    def test_set_replica_budget(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        server = make_server(g, ["a", "b"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=1)
        server.set_replica_budget(ds.dataset_id, 2)
        assert server.replica_budget(ds.dataset_id) == 2
        with pytest.raises(ConfigurationError):
            server.set_replica_budget(ds.dataset_id, 0)
        with pytest.raises(CatalogError):
            server.set_replica_budget(DatasetId("nope"), 1)

    def test_unknown_dataset_budget_raises(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        server = make_server(g, ["a", "b"])
        with pytest.raises(CatalogError):
            server.replica_budget(DatasetId("nope"))

    def test_starved_repair_is_counted(self):
        """extra_replicas beyond what hosts can hold must be visible."""
        g = graph_of(pub("p1", 2009, "a", "b"))
        reg = Registry()
        server = make_server(g, ["a", "b"], registry=reg)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        # budget 3 but only 2 hosts exist: the deficit must surface
        server.publish_dataset_partitioned(ds, assignment_to(ds, "a"), extra_replicas=2)
        assert reg.counter("alloc.repair.starved").value >= 1
        assert server.under_replicated() == [(ds.segments[0].segment_id, 2)]
        deficits = reg.traces.events(kind="publish_deficit")
        assert len(deficits) == 1
        assert deficits[0].fields["live"] == 2


class TestResolveTieBreaking:
    def _two_host_server(self):
        # b and d are both exactly one hop from requester c
        g = graph_of(pub("p1", 2009, "c", "b"), pub("p2", 2009, "c", "d"))
        server = make_server(g, ["b", "d"])
        ds = segment_dataset(DatasetId("d"), AuthorId("b"), 100)
        server.publish_dataset(ds, n_replicas=2)
        return server, ds.segments[0].segment_id

    def test_stats_not_called_during_resolve(self, monkeypatch):
        """The load lookup must be hoisted: building a full RepositoryStats
        per comparison was the hot-path bug."""
        server, seg = self._two_host_server()
        calls = []
        monkeypatch.setattr(
            StorageRepository,
            "stats",
            lambda self: calls.append(1) or pytest.fail("stats() in resolve"),
        )
        server.resolve(seg, AuthorId("c"))
        assert calls == []

    def test_tie_break_hops_then_load_then_node_id(self):
        server, seg = self._two_host_server()
        picks = [server.resolve(seg, AuthorId("c")).replica.node_id for _ in range(4)]
        # equal hops, equal load -> lowest node id (node-b); its load rises,
        # so the next pick alternates to node-d, and so on deterministically
        assert picks == [
            NodeId("node-b"), NodeId("node-d"), NodeId("node-b"), NodeId("node-d"),
        ]

    def test_closer_replica_beats_lower_load(self):
        # a - b - c chain: replica on node-a (2 hops from c) and node-b (1 hop)
        g = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"))
        server = make_server(g, ["a", "b"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        # heavily load node-b: proximity must still win over load
        for _ in range(5):
            server.repository(NodeId("node-b")).read_segment(seg)
        assert server.resolve(seg, AuthorId("c")).replica.node_id == NodeId("node-b")


class TestRollbackAndReactivation:
    def test_rollback_leaves_no_residue(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        reg = Registry()
        # one 1000B host: segment 0 (900B) fits, segment 1 (900B) cannot
        server = AllocationServer(g, RandomPlacement(), seed=0, registry=reg)
        server.register_repository(AuthorId("a"), StorageRepository(NodeId("node-a"), 1000))
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 1800, n_segments=2)

        with pytest.raises(PlacementError):
            server.publish_dataset(ds, n_replicas=1)

        # catalog: dataset gone
        with pytest.raises(CatalogError):
            server.catalog.dataset(ds.dataset_id)
        # budget: gone (lookup now raises, not silently 1)
        with pytest.raises(CatalogError):
            server.replica_budget(ds.dataset_id)
        # storage: every byte freed
        repo = server.repository(NodeId("node-a"))
        assert repo.replica_used_bytes == 0
        assert repo.hosted_segments() == set()
        # no stray replicas and the rollback was observed
        assert list(server.catalog.iter_replicas()) == []
        assert reg.counter("alloc.publish.rollbacks").value == 1
        assert server.under_replicated() == []

    def test_offline_online_reactivates_intact_replicas(self):
        g = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"))
        server = make_server(g, ["a", "b", "c"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=3)
        seg = ds.segments[0].segment_id
        node = NodeId("node-a")

        stale = server.node_offline(node, at=1.0)
        assert stale == 1
        states = {r.state for r in server.catalog.replicas_on_node(node)}
        assert states == {ReplicaState.STALE}

        reactivated = server.node_online(node, at=2.0)
        assert reactivated == 1
        states = {r.state for r in server.catalog.replicas_on_node(node)}
        assert states == {ReplicaState.ACTIVE}
        # the reactivated replica is servable again
        assert server.catalog.redundancy(seg) == 3

    def test_online_with_lost_data_does_not_reactivate(self):
        g = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"))
        server = make_server(g, ["a", "b", "c"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=3)
        seg = ds.segments[0].segment_id
        node = NodeId("node-a")
        server.node_offline(node, at=1.0)
        server.repository(node).evict_replica(seg)  # disk wiped while down
        assert server.node_online(node, at=2.0) == 0
        states = {r.state for r in server.catalog.replicas_on_node(node)}
        assert states == {ReplicaState.STALE}
        assert server.catalog.redundancy(seg) == 2
