"""Unit tests for repro.cdn.server_group (allocation server redundancy)."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.content import segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.server_group import AllocationServerGroup
from repro.cdn.storage import StorageRepository

from ..conftest import pub


@pytest.fixture
def group():
    graph = build_coauthorship_graph(
        Corpus(
            [
                pub("p1", 2009, "a", "b"),
                pub("p2", 2009, "b", "c"),
                pub("p3", 2009, "c", "d"),
            ]
        )
    )
    g = AllocationServerGroup(graph, RandomPlacement(), seed=0)
    for a in "abcd":
        g.register_repository(
            AuthorId(a), StorageRepository(NodeId(f"node-{a}"), 10_000)
        )
    return g


class TestConstruction:
    def test_needs_standby(self, group):
        with pytest.raises(ConfigurationError):
            AllocationServerGroup(group.graph, RandomPlacement(), n_standbys=0)


class TestSync:
    def test_snapshot_captures_datasets(self, group):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        group.publish_dataset(ds, n_replicas=2)
        snap = group.sync(at=5.0)
        assert snap.time == 5.0
        assert [d.dataset_id for d in snap.datasets] == ["d"]
        assert snap.budgets[DatasetId("d")] == 2

    def test_snapshot_age(self, group):
        group.sync(at=10.0)
        assert group.snapshot_age(now=25.0) == 15.0


class TestFailover:
    def test_synced_dataset_survives(self, group):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100, n_segments=2)
        group.publish_dataset(ds, n_replicas=2)
        group.sync(at=1.0)
        old_primary = group.primary
        new = group.fail_primary(at=2.0)
        assert new is not old_primary
        assert group.failovers == 1
        # replicas recovered from repository contents
        for seg in ds.segments:
            assert new.catalog.redundancy(seg.segment_id) == 2
        resolved = group.resolve(ds.segments[0].segment_id, AuthorId("b"))
        assert resolved.replica.servable

    def test_unsynced_dataset_lost_but_data_intact(self, group):
        synced = segment_dataset(DatasetId("old"), AuthorId("a"), 100)
        group.publish_dataset(synced, n_replicas=1)
        group.sync(at=1.0)
        unsynced = segment_dataset(DatasetId("new"), AuthorId("a"), 100)
        group.publish_dataset(unsynced, n_replicas=1)
        new = group.fail_primary(at=2.0)
        # the unsynced dataset's metadata is gone...
        assert "new" not in new.catalog
        with pytest.raises(CatalogError):
            group.resolve(unsynced.segments[0].segment_id, AuthorId("a"))
        # ...but its bytes are still on some repository (orphaned)
        assert group.orphaned_segments() == ["new:seg0"]

    def test_budget_preserved_for_repair(self, group):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        group.publish_dataset(ds, n_replicas=3)
        group.sync(at=1.0)
        new = group.fail_primary(at=2.0)
        # knock one holder offline; repair must restore to the synced budget
        holder = new.catalog.replicas_of_segment(
            ds.segments[0].segment_id, servable_only=True
        )[0]
        new.node_offline(holder.node_id)
        new.repair(at=3.0)
        assert new.under_replicated() == []

    def test_offline_nodes_stay_offline_across_failover(self, group):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        group.publish_dataset(ds, n_replicas=2)
        group.sync(at=1.0)
        victim = group.primary.catalog.replicas_of_segment(
            ds.segments[0].segment_id
        )[0].node_id
        group.primary.node_offline(victim)
        new = group.fail_primary(at=2.0)
        assert not new.is_online(victim)
        # its recovered replica is stale, not servable
        stale = [
            r
            for r in new.catalog.replicas_of_segment(ds.segments[0].segment_id)
            if r.node_id == victim
        ]
        assert stale and not stale[0].servable

    def test_double_failover(self, group):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        group.publish_dataset(ds, n_replicas=2)
        group.sync(at=1.0)
        group.fail_primary(at=2.0)
        group.sync(at=3.0)
        group.fail_primary(at=4.0)
        assert group.failovers == 2
        resolved = group.resolve(ds.segments[0].segment_id, AuthorId("c"))
        assert resolved.replica.servable

    def test_no_orphans_when_synced(self, group):
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        group.publish_dataset(ds, n_replicas=2)
        group.sync(at=1.0)
        group.fail_primary(at=2.0)
        assert group.orphaned_segments() == []
