"""Differential tests for the hop-index resolve fast path.

The tentpole contract: swapping the per-call BFS for the CSR
:class:`~repro.cdn.hopindex.HopIndex` must not change a single resolution.
``resolve_candidates`` is checked byte-for-byte against the retained
pre-index reference implementation
(:func:`repro.cdn.allocation.resolve_candidates_reference`), and
``resolve_many`` is checked against sequential ``resolve`` calls on a twin
deployment — same choices, same counters, same recorded demand.
"""

from __future__ import annotations

import pytest

from repro.ids import AuthorId, DatasetId, NodeId
from repro.obs import Registry
from repro.perf import _request_workload, build_resolve_deployment
from repro.cdn.allocation import resolve_candidates_reference
from repro.cdn.content import segment_dataset
from repro.cdn.demand import DemandTracker

from .test_allocation_bugfixes import graph_of, make_server
from ..conftest import pub


def ranking(candidates):
    """Comparable projection of a candidate list."""
    return [(c.replica.replica_id, c.replica.node_id, c.social_hops) for c in candidates]


def twin_deployments(**kwargs):
    """Two deployments built identically (same seeds, same placement)."""
    a = build_resolve_deployment(registry=Registry(), **kwargs)
    b = build_resolve_deployment(registry=Registry(), **kwargs)
    return a, b


class TestDifferentialCandidates:
    def test_matches_reference_on_scenario_deployment(self):
        server, segments, authors = build_resolve_deployment(
            far_clusters=4, datasets=3, registry=Registry()
        )
        for seg, req in _request_workload(segments, authors, 200):
            fast = server.resolve_candidates(seg, req)
            ref = resolve_candidates_reference(server, seg, req)
            assert ranking(fast) == ranking(ref)

    def test_matches_reference_after_load_skew(self):
        """The ranking must track mutable load identically in both paths."""
        server, segments, authors = build_resolve_deployment(
            far_clusters=2, registry=Registry()
        )
        for seg, req in _request_workload(segments, authors, 50):
            server.resolve(seg, req)  # records reads: loads diverge per node
        for seg in segments:
            for req in authors[:5]:
                assert ranking(server.resolve_candidates(seg, req)) == ranking(
                    resolve_candidates_reference(server, seg, req)
                )

    def test_matches_reference_for_outside_requester(self):
        server, segments, _ = build_resolve_deployment(
            far_clusters=2, registry=Registry()
        )
        ghost = AuthorId("nobody-knows-me")
        for seg in segments:
            fast = server.resolve_candidates(seg, ghost)
            ref = resolve_candidates_reference(server, seg, ghost)
            assert ranking(fast) == ranking(ref)
            assert all(c.social_hops is None for c in fast)

    def test_limit_respected(self):
        server, segments, authors = build_resolve_deployment(
            far_clusters=2, registry=Registry()
        )
        full = server.resolve_candidates(segments[0], authors[0])
        head = server.resolve_candidates(segments[0], authors[0], limit=2)
        assert ranking(head) == ranking(full)[:2]
        assert ranking(head) == ranking(
            resolve_candidates_reference(server, segments[0], authors[0], limit=2)
        )


class TestResolveManyEquivalence:
    def test_same_choices_as_sequential_resolve(self):
        (s1, segments, authors), (s2, _, _) = twin_deployments(far_clusters=3)
        workload = _request_workload(segments, authors, 120)
        sequential = [s1.resolve(seg, req) for seg, req in workload]
        batched = s2.resolve_many(workload)
        assert [(r.replica.replica_id, r.social_hops) for r in sequential] == [
            (r.replica.replica_id, r.social_hops) for r in batched
        ]

    def test_same_counters_as_sequential_resolve(self):
        (s1, segments, authors), (s2, _, _) = twin_deployments(far_clusters=3)
        workload = _request_workload(segments, authors, 120)
        for seg, req in workload:
            s1.resolve(seg, req)
        s2.resolve_many(workload)
        for name in (
            "alloc.resolve.total",
            "alloc.resolve.failed",
            "alloc.resolve.unreachable",
            "alloc.hop_cache.hits",
            "alloc.hop_cache.misses",
        ):
            assert (
                s2.obs.counter(name).value == s1.obs.counter(name).value
            ), name

    def test_same_recorded_load_as_sequential_resolve(self):
        (s1, segments, authors), (s2, _, _) = twin_deployments(far_clusters=3)
        workload = _request_workload(segments, authors, 120)
        for seg, req in workload:
            s1.resolve(seg, req)
        s2.resolve_many(workload)
        for author in authors:
            node = NodeId(f"node-{author}")
            assert (
                s2.repository(node).reads_served == s1.repository(node).reads_served
            )

    def test_record_false_leaves_no_load(self):
        server, segments, authors = build_resolve_deployment(
            far_clusters=2, registry=Registry()
        )
        workload = _request_workload(segments, authors, 40)
        server.resolve_many(workload, record=False)
        assert all(
            server.repository(NodeId(f"node-{a}")).reads_served == 0 for a in authors
        )

    def test_none_for_unresolvable_segment(self):
        g = graph_of(pub("p1", 2009, "a", "b"))
        reg = Registry()
        server = make_server(g, ["a", "b"], registry=reg)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        server.node_offline(NodeId("node-a"), at=1.0)
        server.node_offline(NodeId("node-b"), at=1.0)
        out = server.resolve_many([(seg, AuthorId("a")), (seg, AuthorId("b"))])
        assert out == [None, None]
        assert reg.counter("alloc.resolve.failed").value == 2
        assert reg.counter("alloc.resolve.total").value == 0

    def test_batch_counters_and_trace(self):
        server, segments, authors = build_resolve_deployment(
            far_clusters=2, registry=Registry()
        )
        workload = _request_workload(segments, authors, 30)
        server.resolve_many(workload, record=False)
        assert server.obs.counter("alloc.resolve.batches").value == 1
        events = server.obs.traces.events(kind="resolve_batch")
        assert len(events) == 1
        assert events[0].fields["requests"] == 30
        assert events[0].fields["served"] == 30
        # no per-request resolve traces from the batch path
        assert server.obs.traces.events(kind="resolve") == []

    def test_batch_failure_trace_aggregates_misses(self):
        """A batch with unresolvable requests must emit one aggregate
        ``resolve_batch_failed`` event (the batch path never emits the
        per-request ``resolve_failed`` traces single resolve does)."""
        g = graph_of(pub("p1", 2009, "a", "b"))
        reg = Registry()
        server = make_server(g, ["a", "b"], registry=reg)
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        server.node_offline(NodeId("node-a"), at=1.0)
        server.node_offline(NodeId("node-b"), at=1.0)
        out = server.resolve_many([(seg, AuthorId("a")), (seg, AuthorId("b"))])
        assert out == [None, None]
        failures = server.obs.traces.events(kind="resolve_batch_failed")
        assert len(failures) == 1
        assert failures[0].fields["failed"] == 2
        assert failures[0].fields["segments"] == [str(seg), str(seg)]
        batch = server.obs.traces.events(kind="resolve_batch")
        assert batch[0].fields["failed"] == 2
        assert batch[0].fields["served"] == 0
        # failure counter parity with the sequential path
        assert reg.counter("alloc.resolve.failed").value == 2
        assert server.obs.traces.events(kind="resolve_failed") == []

    def test_no_failure_trace_when_all_served(self):
        server, segments, authors = build_resolve_deployment(
            far_clusters=2, registry=Registry()
        )
        server.resolve_many(_request_workload(segments, authors, 12), record=False)
        assert server.obs.traces.events(kind="resolve_batch_failed") == []
        batch = server.obs.traces.events(kind="resolve_batch")
        assert batch[0].fields["failed"] == 0

    def test_demand_tracker_fed_in_one_ingest(self):
        (s1, segments, authors), (s2, _, _) = twin_deployments(far_clusters=2)
        workload = _request_workload(segments, authors, 60)
        t1, t2 = DemandTracker(), DemandTracker()
        for seg, req in workload:
            s1.resolve(seg, req)
            t1.record_access(seg, req)
        s2.resolve_many(workload, demand=t2)
        t1.fold(at=10.0)
        t2.fold(at=10.0)
        assert t1.tracked_segments == t2.tracked_segments
        for seg in segments:
            assert t2.rate(seg) == pytest.approx(t1.rate(seg))
            assert t2.top_requesters(seg) == t1.top_requesters(seg)

    def test_empty_batch(self):
        server, _, _ = build_resolve_deployment(far_clusters=2, registry=Registry())
        assert server.resolve_many([]) == []
        assert server.obs.counter("alloc.resolve.batches").value == 1


class TestEvictionAccounting:
    def test_eviction_counter_mirrors_index(self):
        """Under a tiny hop-cache bound the server must surface evictions."""
        from repro.social.graph import build_coauthorship_graph
        from repro.social.records import Corpus
        from repro.cdn.allocation import AllocationServer
        from repro.cdn.placement import RandomPlacement
        from repro.cdn.storage import StorageRepository

        g = build_coauthorship_graph(
            Corpus(
                [
                    pub("p1", 2009, "a", "b"),
                    pub("p2", 2009, "b", "c"),
                    pub("p3", 2009, "c", "d"),
                ]
            )
        )
        reg = Registry()
        server = AllocationServer(
            g, RandomPlacement(), seed=0, registry=reg, hop_cache_sources=2
        )
        for a in ["a", "b", "c", "d"]:
            server.register_repository(
                AuthorId(a), StorageRepository(NodeId(f"node-{a}"), 10_000)
            )
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        for a in ["a", "b", "c", "d"]:
            server.resolve(seg, AuthorId(a), record=False)
        assert server.hop_index.evictions == 2
        assert reg.counter("alloc.hop_index.evictions").value == 2
        assert reg.gauge("alloc.hop_index.size").value == 2

    def test_gauge_synced_on_index_rebuild(self):
        """A hop-index rebuild must refresh the size gauge immediately —
        it used to stay stale until the next cache miss."""
        reg = Registry()
        server, segments, authors = build_resolve_deployment(
            far_clusters=2, registry=reg
        )
        for seg, req in _request_workload(segments, authors, 10):
            server.resolve_candidates(seg, req)
        assert reg.gauge("alloc.hop_index.size").value > 0
        server.graph = server.graph  # swap triggers a full rebuild
        assert reg.gauge("alloc.hop_index.size").value == 0
        assert server.hop_index.n_cached == 0

    def test_gauge_synced_on_membership_invalidation(self):
        """Registering a repository drops reachable cached sources; the
        gauge must reflect that without waiting for a miss."""
        g = graph_of(pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"))
        server = make_server(g, ["a", "b"])  # c in graph, not yet registered
        server_reg = server.obs
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        server.resolve(seg, AuthorId("a"), record=False)
        server.resolve(seg, AuthorId("b"), record=False)
        assert server_reg.gauge("alloc.hop_index.size").value == 2
        from repro.cdn.storage import StorageRepository

        server.register_repository(
            AuthorId("c"), StorageRepository(NodeId("node-c"), 10_000)
        )
        # a and b both reach c, so both cached sources were invalidated
        assert server.hop_index.n_cached == 0
        assert server_reg.gauge("alloc.hop_index.size").value == 0

    def test_gauge_stays_fresh_on_pure_hits(self):
        """After an invalidation, a workload of pure cache hits must not
        resurrect a stale gauge value."""
        reg = Registry()
        server, segments, authors = build_resolve_deployment(
            far_clusters=2, registry=reg
        )
        server.resolve_candidates(segments[0], authors[0])  # one cached source
        size = reg.gauge("alloc.hop_index.size").value
        assert size == 1
        for _ in range(5):
            server.resolve_candidates(segments[0], authors[0])  # hits only
        assert reg.gauge("alloc.hop_index.size").value == size
