"""End-to-end data integrity: digests, bit rot, quarantine, scrubbing.

Covers the content-digest data model, storage-level corruption and
verification, catalog quarantine semantics, the :class:`IntegrityScrubber`
audit/repair loop, byte-accounting conservation through the
corrupt → quarantine → repair cycle, and the property-based invariants of
the catalog under randomized corruption (unique replica ids, at most one
replica per segment per node, quarantined replicas never resolvable).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CatalogError, ConfigurationError, StorageError
from repro.ids import AuthorId, DatasetId, NodeId, SegmentId
from repro.obs import Registry
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.catalog import ReplicaCatalog
from repro.cdn.content import (
    DataSegment,
    ReplicaState,
    content_digest,
    segment_dataset,
)
from repro.cdn.integrity import IntegrityScrubber, ScrubReport
from repro.cdn.placement import RandomPlacement
from repro.cdn.replication import ReplicationPolicy
from repro.cdn.storage import StorageRepository
from repro.sim.engine import SimulationEngine

from ..conftest import pub

AUTHORS = ("alice", "bob", "carol", "dave", "erin")


def community_graph():
    pubs = [
        pub("p1", 2009, "alice", "bob", "carol"),
        pub("p2", 2010, "carol", "dave", "erin"),
        pub("p3", 2010, "alice", "bob"),
        pub("p4", 2010, "dave", "erin"),
        pub("p5", 2011, "bob", "dave"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


@pytest.fixture
def rig():
    """Server + policy + scrubber over five repos and one 3-replica dataset.

    Returns ``(registry, server, policy, scrubber, segment_id)``.
    """
    registry = Registry()
    server = AllocationServer(
        community_graph(), RandomPlacement(), seed=0, registry=registry
    )
    for a in AUTHORS:
        server.register_repository(AuthorId(a), StorageRepository(NodeId(a), 10_000))
    ds = segment_dataset(DatasetId("d"), AuthorId("alice"), 1000)
    server.publish_dataset(ds, n_replicas=3)
    policy = ReplicationPolicy(server, registry=registry)
    scrubber = IntegrityScrubber(server, policy=policy, registry=registry)
    return registry, server, policy, scrubber, ds.segments[0].segment_id


def corrupt_one(server, seg):
    """Rot the first (sorted) hosting node's copy; returns the node id."""
    node = sorted(server.catalog.nodes_hosting(seg))[0]
    server.repository(node).corrupt_replica(seg, at=5.0)
    return node


class TestContentDigests:
    def test_digest_backfilled_and_deterministic(self):
        seg = DataSegment(SegmentId("d:s0"), DatasetId("d"), 0, 500)
        assert seg.digest == content_digest(SegmentId("d:s0"), 500)
        assert seg.digest != content_digest(SegmentId("d:s0"), 501)

    def test_explicit_digest_preserved(self):
        seg = DataSegment(SegmentId("d:s0"), DatasetId("d"), 0, 500, digest="abc")
        assert seg.digest == "abc"

    def test_replica_inherits_segment_digest(self, rig):
        _, server, _, _, seg = rig
        for rep in server.catalog.replicas_of_segment(seg):
            assert rep.digest == server.catalog.segment(seg).digest


class TestStorageCorruption:
    def test_store_records_digest(self):
        repo = StorageRepository(NodeId("n"), 1000)
        repo.store_replica(SegmentId("s"), 100, digest="good")
        assert repo.stored_digest(SegmentId("s")) == "good"
        assert repo.verify_replica(SegmentId("s"), "good")
        assert not repo.verify_replica(SegmentId("s"), "other")

    def test_corrupt_flips_digest_and_timestamps(self):
        repo = StorageRepository(NodeId("n"), 1000)
        repo.store_replica(SegmentId("s"), 100, digest="good")
        repo.corrupt_replica(SegmentId("s"), at=42.0)
        assert repo.is_corrupted(SegmentId("s"))
        assert repo.corrupted_at(SegmentId("s")) == 42.0
        assert repo.stored_digest(SegmentId("s")) != "good"
        assert not repo.verify_replica(SegmentId("s"), "good")

    def test_double_corruption_keeps_first_timestamp(self):
        repo = StorageRepository(NodeId("n"), 1000)
        repo.store_replica(SegmentId("s"), 100, digest="good")
        repo.corrupt_replica(SegmentId("s"), at=10.0)
        repo.corrupt_replica(SegmentId("s"), at=20.0)
        assert repo.corrupted_at(SegmentId("s")) == 10.0

    def test_empty_digest_verifies_trivially(self):
        repo = StorageRepository(NodeId("n"), 1000)
        repo.store_replica(SegmentId("s"), 100)  # undigested legacy caller
        assert repo.verify_replica(SegmentId("s"), "anything")
        assert repo.verify_replica(SegmentId("s"), "")

    def test_evict_clears_corruption_bookkeeping(self):
        repo = StorageRepository(NodeId("n"), 1000)
        repo.store_replica(SegmentId("s"), 100, digest="good")
        repo.corrupt_replica(SegmentId("s"), at=1.0)
        repo.evict_replica(SegmentId("s"))
        repo.store_replica(SegmentId("s"), 100, digest="good")
        assert not repo.is_corrupted(SegmentId("s"))
        assert repo.verify_replica(SegmentId("s"), "good")

    def test_corrupt_unhosted_raises(self):
        repo = StorageRepository(NodeId("n"), 1000)
        with pytest.raises(StorageError):
            repo.corrupt_replica(SegmentId("s"))
        with pytest.raises(StorageError):
            repo.stored_digest(SegmentId("s"))

    def test_corrupt_reads_counted(self):
        repo = StorageRepository(NodeId("n"), 1000)
        repo.store_replica(SegmentId("s"), 100, digest="good")
        repo.read_segment(SegmentId("s"))
        repo.corrupt_replica(SegmentId("s"), at=1.0)
        repo.read_segment(SegmentId("s"))
        repo.read_segment(SegmentId("s"))
        stats = repo.stats()
        assert repo.corrupt_reads_served == 2
        assert stats.corrupt_reads_served == 2
        assert stats.corrupt_replicas == 1


class TestCatalogQuarantine:
    def _catalog_with_replica(self):
        catalog = ReplicaCatalog()
        ds = segment_dataset(DatasetId("d"), AuthorId("o"), 100)
        catalog.register_dataset(ds)
        rep = catalog.create_replica(ds.segments[0].segment_id, NodeId("n"))
        return catalog, rep

    def test_quarantined_not_servable(self):
        catalog, rep = self._catalog_with_replica()
        catalog.quarantine(rep.replica_id)
        assert rep.state is ReplicaState.QUARANTINED
        assert catalog.replicas_of_segment(rep.segment_id, servable_only=True) == []
        assert catalog.quarantined_replicas() == [rep]

    def test_quarantined_cannot_reactivate(self):
        catalog, rep = self._catalog_with_replica()
        catalog.quarantine(rep.replica_id)
        with pytest.raises(CatalogError):
            catalog.activate(rep.replica_id)

    def test_quarantine_outranks_stale(self):
        catalog, rep = self._catalog_with_replica()
        catalog.quarantine(rep.replica_id)
        catalog.mark_stale(rep.replica_id)
        assert rep.state is ReplicaState.QUARANTINED

    def test_quarantined_blocks_same_node_placement(self):
        catalog, rep = self._catalog_with_replica()
        catalog.quarantine(rep.replica_id)
        with pytest.raises(CatalogError):
            catalog.create_replica(rep.segment_id, NodeId("n"))

    def test_retire_is_the_only_exit(self):
        catalog, rep = self._catalog_with_replica()
        catalog.quarantine(rep.replica_id)
        catalog.retire(rep.replica_id)
        assert rep.state is ReplicaState.RETIRED
        with pytest.raises(CatalogError):
            catalog.quarantine(rep.replica_id)


class TestScrubber:
    def test_clean_pass_finds_nothing(self, rig):
        _, _, _, scrubber, _ = rig
        report = scrubber.scrub(at=10.0)
        assert isinstance(report, ScrubReport)
        assert report.corrupt_found == 0
        assert report.replicas_checked == 3
        assert not report.repair_triggered
        assert scrubber.quarantine_log == []

    def test_detects_quarantines_and_repairs(self, rig):
        registry, server, _, scrubber, seg = rig
        node = corrupt_one(server, seg)
        report = scrubber.scrub(at=60.0)
        assert report.corrupt_found == 1
        assert report.quarantined == 1
        assert report.repair_triggered
        assert scrubber.quarantine_log == [(60.0, node, seg)]
        # rotted bytes evicted, replica out of every servable lookup
        assert not server.repository(node).hosts_segment(seg)
        assert node not in server.catalog.nodes_hosting(seg)
        # the synchronous repair audit restored the budget on clean nodes
        assert server.catalog.redundancy(seg) == 3
        assert scrubber.corrupt_servable() == []
        snap = registry.snapshot()
        assert snap["counters"]["integrity.scrub.corrupt_found"]["value"] == 1
        assert snap["counters"]["alloc.quarantine.replicas"]["value"] == 1

    def test_detect_latency_histogram(self, rig):
        registry, server, _, scrubber, seg = rig
        corrupt_one(server, seg)  # rotted at t=5
        scrubber.scrub(at=65.0)
        hist = registry.snapshot()["histograms"]["integrity.scrub.detect_latency_s"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(60.0)

    def test_offline_nodes_skipped(self, rig):
        _, server, _, scrubber, seg = rig
        node = corrupt_one(server, seg)
        server.node_offline(node, at=10.0)
        report = scrubber.scrub(at=20.0)
        assert report.nodes_skipped_offline == 1
        assert report.corrupt_found == 0  # unreadable disk: not scanned

    def test_no_policy_means_no_repair(self, rig):
        _, server, _, _, seg = rig
        scrubber = IntegrityScrubber(server, registry=Registry())
        corrupt_one(server, seg)
        report = scrubber.scrub(at=30.0)
        assert report.corrupt_found == 1
        assert not report.repair_triggered
        assert server.catalog.redundancy(seg) == 2

    def test_attach_runs_periodically(self, rig):
        _, server, _, scrubber, seg = rig
        engine = SimulationEngine(registry=Registry())
        scrubber.scrub_interval_s = 100.0
        scrubber.attach(engine)
        corrupt_one(server, seg)
        engine.run(until=350.0)
        assert len(scrubber.reports) == 3
        assert sum(r.corrupt_found for r in scrubber.reports) == 1
        # the engine-attached path schedules the repair audit as an event
        assert server.catalog.redundancy(seg) == 3

    def test_invalid_config(self, rig):
        _, server, _, _, _ = rig
        with pytest.raises(ConfigurationError):
            IntegrityScrubber(server, scrub_interval_s=0.0, registry=Registry())
        with pytest.raises(ConfigurationError):
            IntegrityScrubber(server, repair_delay_s=-1.0, registry=Registry())


class TestByteAccounting:
    def test_corrupt_quarantine_repair_conserves_bytes(self, rig):
        """Satellite regression: the corrupt → quarantine → repair cycle
        must return total replica-partition usage to its baseline — no
        leaked bytes on the quarantining node, no double-count on the
        repair target."""
        _, server, _, scrubber, seg = rig

        def usage():
            return {
                a: server.repository(server.node_of(a)).replica_used_bytes
                for a in server.registered_authors()
            }

        baseline = usage()
        node = corrupt_one(server, seg)
        assert usage() == baseline  # rot flips a digest, not a byte count
        scrubber.scrub(at=60.0)
        after = usage()
        author_of_node = next(
            a for a in server.registered_authors() if server.node_of(a) == node
        )
        # the rotted copy's bytes are gone from the quarantined node...
        assert after[author_of_node] == baseline[author_of_node] - 1000
        # ...and exactly one new copy landed elsewhere: totals match
        assert sum(after.values()) == sum(baseline.values())
        assert server.catalog.redundancy(seg) == 3


class TestServerIntegrityPaths:
    def test_reactivation_verifies_digests(self, rig):
        """A node coming back online must not resurrect a copy that rotted
        while it was dark."""
        _, server, _, _, seg = rig
        node = corrupt_one(server, seg)
        server.node_offline(node, at=10.0)
        server.node_online(node, at=20.0)
        reps = [
            r
            for r in server.catalog.replicas_of_segment(seg)
            if r.node_id == node
        ]
        assert reps[0].state is ReplicaState.QUARANTINED
        assert not server.repository(node).hosts_segment(seg)

    def test_repair_skips_segment_with_no_verified_source(self, rig):
        registry, server, _, _, seg = rig
        for node in sorted(server.catalog.nodes_hosting(seg)):
            server.repository(node).corrupt_replica(seg, at=5.0)
        # all three copies rotted but still cataloged ACTIVE; force a
        # shortage so repair looks at the segment
        victim = sorted(server.catalog.nodes_hosting(seg))[0]
        rep = next(
            r
            for r in server.catalog.replicas_of_segment(seg)
            if r.node_id == victim
        )
        server.quarantine_replica(rep.replica_id, at=10.0)
        created = server.repair(at=20.0)
        assert created == []
        snap = registry.snapshot()
        assert snap["counters"]["alloc.repair.no_verified_source"]["value"] == 1

    def test_quarantine_replica_errors_on_unknown(self, rig):
        _, server, _, _, _ = rig
        with pytest.raises(CatalogError):
            server.quarantine_replica("r-999")


class TestFailoverRebuildVerification:
    def test_rebuild_drops_unverifiable_replicas(self):
        """Satellite: a promoted standby must not re-catalog repository
        copies whose digest disagrees with the snapshot."""
        from repro.cdn.server_group import AllocationServerGroup

        group = AllocationServerGroup(
            community_graph(), RandomPlacement(), seed=3
        )
        for a in AUTHORS:
            group.register_repository(
                AuthorId(a), StorageRepository(NodeId(a), 10_000)
            )
        ds = segment_dataset(DatasetId("d"), AuthorId("alice"), 1000)
        group.publish_dataset(ds, n_replicas=3)
        group.sync(at=100.0)
        seg = ds.segments[0].segment_id
        rotted = sorted(group.primary.catalog.nodes_hosting(seg))[0]
        group.primary.repository(rotted).corrupt_replica(seg, at=150.0)

        new = group.fail_primary(at=200.0)
        assert group.dropped_unverifiable == 1
        assert rotted not in new.catalog.nodes_hosting(seg)
        assert len(new.catalog.nodes_hosting(seg)) == 2
        # the rotted bytes were evicted, not left as an orphan
        assert not new.repository(rotted).hosts_segment(seg)


# ---------------------------------------------------------------------------
# property-based invariants (satellite: catalog + scrubber under randomness)
# ---------------------------------------------------------------------------

OPS = st.lists(
    st.tuples(st.sampled_from(["corrupt", "scrub", "offline", "online", "repair"]),
              st.integers(min_value=0, max_value=4)),
    min_size=1,
    max_size=25,
)


@settings(max_examples=25, deadline=None)
@given(ops=OPS, seed=st.integers(min_value=0, max_value=2**16))
def test_catalog_integrity_invariants(ops, seed):
    """Under any interleaving of corruption, scrubbing, churn, and repair:

    * replica ids stay unique;
    * at most one non-retired replica of a segment per node;
    * a quarantined replica never appears in resolve candidates;
    * no servable replica on a live node fails verification right after a
      scrub pass.
    """
    registry = Registry()
    server = AllocationServer(
        community_graph(), RandomPlacement(), seed=seed, registry=registry
    )
    for a in AUTHORS:
        server.register_repository(AuthorId(a), StorageRepository(NodeId(a), 10_000))
    ds = segment_dataset(DatasetId("d"), AuthorId("alice"), 1000, n_segments=2)
    server.publish_dataset(ds, n_replicas=3)
    policy = ReplicationPolicy(server, registry=registry)
    scrubber = IntegrityScrubber(server, policy=policy, registry=registry)
    segments = [s.segment_id for s in ds.segments]
    nodes = [NodeId(a) for a in AUTHORS]
    now = 0.0

    for op, pick in ops:
        now += 10.0
        node = nodes[pick % len(nodes)]
        seg = segments[pick % len(segments)]
        try:
            if op == "corrupt":
                repo = server.repository(node)
                if repo.hosts_segment(seg):
                    repo.corrupt_replica(seg, at=now)
            elif op == "scrub":
                scrubber.scrub(at=now)
            elif op == "offline":
                if server.is_online(node):
                    server.node_offline(node, at=now)
            elif op == "online":
                if not server.is_online(node):
                    server.node_online(node, at=now)
            elif op == "repair":
                server.repair(at=now)
        except CatalogError:
            pytest.fail(f"op {op!r} violated a catalog invariant")

        catalog = server.catalog
        ids = [r.replica_id for r in catalog.iter_replicas()]
        assert len(ids) == len(set(ids)), "duplicate replica ids"
        for s in segments:
            per_node = [r.node_id for r in catalog.replicas_of_segment(s)]
            assert len(per_node) == len(set(per_node)), (
                "multiple replicas of one segment on one node"
            )
        quarantined_ids = {r.replica_id for r in catalog.quarantined_replicas()}
        for s in segments:
            for a in AUTHORS:
                try:
                    candidates = server.resolve_candidates(s, AuthorId(a))
                except CatalogError:
                    continue
                for c in candidates:
                    assert c.replica.replica_id not in quarantined_ids, (
                        "quarantined replica offered to a reader"
                    )
        if op == "scrub":
            assert scrubber.corrupt_servable() == []
