"""Unit tests for repro.cdn.content."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, DatasetId, SegmentId
from repro.cdn.content import (
    DataSegment,
    Dataset,
    Replica,
    ReplicaState,
    segment_dataset,
)


def seg(ds: str, i: int, size: int) -> DataSegment:
    return DataSegment(
        segment_id=SegmentId(f"{ds}:seg{i}"),
        dataset_id=DatasetId(ds),
        index=i,
        size_bytes=size,
    )


class TestDataSegment:
    def test_valid(self):
        s = seg("d", 0, 100)
        assert s.size_bytes == 100

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            seg("d", -1, 100)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            seg("d", 0, 0)


class TestDataset:
    def test_valid(self):
        ds = Dataset(
            dataset_id=DatasetId("d"),
            owner=AuthorId("o"),
            size_bytes=300,
            segments=(seg("d", 0, 100), seg("d", 1, 200)),
        )
        assert ds.n_segments == 2
        assert ds.segment(1).size_bytes == 200

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="sum"):
            Dataset(
                dataset_id=DatasetId("d"),
                owner=AuthorId("o"),
                size_bytes=999,
                segments=(seg("d", 0, 100),),
            )

    def test_no_segments_rejected(self):
        with pytest.raises(ConfigurationError):
            Dataset(DatasetId("d"), AuthorId("o"), 100, ())

    def test_wrong_dataset_id_on_segment_rejected(self):
        with pytest.raises(ConfigurationError, match="belongs"):
            Dataset(
                dataset_id=DatasetId("d"),
                owner=AuthorId("o"),
                size_bytes=100,
                segments=(seg("other", 0, 100),),
            )

    def test_out_of_order_segments_rejected(self):
        with pytest.raises(ConfigurationError, match="index"):
            Dataset(
                dataset_id=DatasetId("d"),
                owner=AuthorId("o"),
                size_bytes=300,
                segments=(seg("d", 1, 100), seg("d", 0, 200)),
            )

    def test_segment_out_of_range(self):
        ds = segment_dataset(DatasetId("d"), AuthorId("o"), 100)
        with pytest.raises(ConfigurationError):
            ds.segment(5)


class TestSegmentDataset:
    def test_even_split(self):
        ds = segment_dataset(DatasetId("d"), AuthorId("o"), 1000, n_segments=4)
        assert [s.size_bytes for s in ds.segments] == [250, 250, 250, 250]

    def test_remainder_goes_to_last(self):
        ds = segment_dataset(DatasetId("d"), AuthorId("o"), 1001, n_segments=4)
        assert [s.size_bytes for s in ds.segments] == [250, 250, 250, 251]
        assert sum(s.size_bytes for s in ds.segments) == 1001

    def test_single_segment(self):
        ds = segment_dataset(DatasetId("d"), AuthorId("o"), 7)
        assert ds.n_segments == 1
        assert ds.segments[0].size_bytes == 7

    def test_too_many_segments_rejected(self):
        with pytest.raises(ConfigurationError):
            segment_dataset(DatasetId("d"), AuthorId("o"), 3, n_segments=4)

    def test_zero_segments_rejected(self):
        with pytest.raises(ConfigurationError):
            segment_dataset(DatasetId("d"), AuthorId("o"), 3, n_segments=0)

    def test_project_tag(self):
        ds = segment_dataset(DatasetId("d"), AuthorId("o"), 7, project="trial")
        assert ds.project == "trial"


class TestReplica:
    def test_lifecycle(self):
        r = Replica(replica_id="r-0", segment_id="d:seg0", node_id="n1")
        assert r.state is ReplicaState.PENDING
        assert not r.servable
        r.state = ReplicaState.ACTIVE
        assert r.servable

    def test_touch_counts(self):
        r = Replica(replica_id="r-0", segment_id="d:seg0", node_id="n1")
        r.touch()
        r.touch()
        assert r.access_count == 2
