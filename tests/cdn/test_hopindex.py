"""Unit tests for the CSR-backed :class:`repro.cdn.hopindex.HopIndex`.

The index must be a drop-in for per-call BFS: every distance map it serves
is checked against :func:`repro.social.ego.hop_distances` restricted to one
source, across connected, disconnected, and trivial graphs. The rest of
the class — LRU bounding, bounded-radius queries, component labels and the
selective-invalidation predicate — is covered structurally.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId
from repro.social.ego import hop_distances
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.hopindex import HopIndex

from ..conftest import pub


def graph_of(*pubs_):
    return build_coauthorship_graph(Corpus(list(pubs_)))


@pytest.fixture
def chain():
    """a - b - c - d chain."""
    return graph_of(
        pub("p1", 2009, "a", "b"),
        pub("p2", 2009, "b", "c"),
        pub("p3", 2009, "c", "d"),
    )


@pytest.fixture
def two_islands():
    """Two components: {a, b, c} triangle and {x, y} edge."""
    return graph_of(
        pub("p1", 2009, "a", "b"),
        pub("p2", 2009, "b", "c"),
        pub("p3", 2009, "a", "c"),
        pub("p4", 2009, "x", "y"),
    )


class TestBfsEquivalence:
    @pytest.mark.parametrize("fixture", ["chain", "two_islands"])
    def test_matches_hop_distances_from_every_source(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        index = HopIndex(graph)
        for source in graph.nodes():
            hops, hit = index.distances(source)
            assert not hit  # first lookup is a miss
            assert hops == hop_distances(graph, {source})

    def test_synthetic_graph(self, synthetic):
        from repro.social.ego import ego_corpus

        corpus, seed = synthetic
        graph = build_coauthorship_graph(ego_corpus(corpus, seed, hops=2))
        index = HopIndex(graph)
        for source in graph.nodes():
            assert index.distances(source)[0] == hop_distances(graph, {source})

    def test_source_maps_to_zero(self, chain):
        hops, _ = HopIndex(chain).distances(AuthorId("a"))
        assert hops[AuthorId("a")] == 0
        assert hops[AuthorId("d")] == 3

    def test_unreachable_absent(self, two_islands):
        hops, _ = HopIndex(two_islands).distances(AuthorId("a"))
        assert AuthorId("x") not in hops
        assert set(hops) == {AuthorId("a"), AuthorId("b"), AuthorId("c")}

    def test_unknown_source_yields_empty_and_is_cached(self, chain):
        index = HopIndex(chain)
        hops, hit = index.distances(AuthorId("ghost"))
        assert hops == {} and not hit
        hops, hit = index.distances(AuthorId("ghost"))
        assert hops == {} and hit  # the empty map is cached too

    def test_empty_graph(self):
        index = HopIndex(graph_of())
        assert index.n_nodes == 0
        assert index.distances(AuthorId("a"))[0] == {}


class TestCacheBehavior:
    def test_second_lookup_hits(self, chain):
        index = HopIndex(chain)
        index.distances(AuthorId("a"))
        _, hit = index.distances(AuthorId("a"))
        assert hit
        assert index.n_cached == 1

    def test_is_cached_does_not_touch_lru(self, chain):
        index = HopIndex(chain, max_sources=2)
        index.distances(AuthorId("a"))
        index.distances(AuthorId("b"))
        # a is the LRU entry; is_cached must not refresh it
        assert index.is_cached(AuthorId("a"))
        index.distances(AuthorId("c"))  # evicts a, not b
        assert not index.is_cached(AuthorId("a"))
        assert index.is_cached(AuthorId("b"))

    def test_lru_bound_and_evictions_counter(self, chain):
        index = HopIndex(chain, max_sources=2)
        for name in ["a", "b", "c", "d"]:
            index.distances(AuthorId(name))
        assert index.n_cached == 2
        assert index.evictions == 2
        assert index.is_cached(AuthorId("c")) and index.is_cached(AuthorId("d"))

    def test_hit_refreshes_lru_order(self, chain):
        index = HopIndex(chain, max_sources=2)
        index.distances(AuthorId("a"))
        index.distances(AuthorId("b"))
        index.distances(AuthorId("a"))  # refresh a; b becomes LRU
        index.distances(AuthorId("c"))  # evicts b
        assert index.is_cached(AuthorId("a"))
        assert not index.is_cached(AuthorId("b"))

    def test_max_sources_must_be_positive(self, chain):
        with pytest.raises(ConfigurationError):
            HopIndex(chain, max_sources=0)


class TestWithin:
    def test_bounded_radius_cold(self, chain):
        index = HopIndex(chain)
        got = index.within(AuthorId("a"), 2)
        assert got == {AuthorId("a"): 0, AuthorId("b"): 1, AuthorId("c"): 2}
        # the bounded result must not be cached as a full map
        assert not index.is_cached(AuthorId("a"))

    def test_bounded_radius_served_from_cached_full_map(self, chain):
        index = HopIndex(chain)
        full, _ = index.distances(AuthorId("a"))
        got = index.within(AuthorId("a"), 1)
        assert got == {a: d for a, d in full.items() if d <= 1}

    def test_radius_zero(self, chain):
        assert HopIndex(chain).within(AuthorId("a"), 0) == {AuthorId("a"): 0}

    def test_negative_radius_rejected(self, chain):
        with pytest.raises(ConfigurationError):
            HopIndex(chain).within(AuthorId("a"), -1)

    def test_unknown_source(self, chain):
        assert HopIndex(chain).within(AuthorId("ghost"), 3) == {}


class TestComponents:
    def test_connected_share_label(self, two_islands):
        index = HopIndex(two_islands)
        assert index.component_of(AuthorId("a")) == index.component_of(AuthorId("c"))
        assert index.component_of(AuthorId("x")) == index.component_of(AuthorId("y"))
        assert index.component_of(AuthorId("a")) != index.component_of(AuthorId("x"))

    def test_unknown_author_has_no_label(self, two_islands):
        assert HopIndex(two_islands).component_of(AuthorId("ghost")) is None

    def test_contains(self, chain):
        index = HopIndex(chain)
        assert AuthorId("a") in index
        assert AuthorId("ghost") not in index


class TestInvalidation:
    def test_invalidate_reachable_drops_same_component_only(self, two_islands):
        index = HopIndex(two_islands)
        for name in ["a", "b", "x"]:
            index.distances(AuthorId(name))
        dropped = index.invalidate_reachable(AuthorId("c"))
        assert dropped == 2  # a and b share c's component; x survives
        assert not index.is_cached(AuthorId("a"))
        assert not index.is_cached(AuthorId("b"))
        assert index.is_cached(AuthorId("x"))

    def test_invalidate_reachable_unknown_author(self, two_islands):
        index = HopIndex(two_islands)
        index.distances(AuthorId("a"))
        assert index.invalidate_reachable(AuthorId("ghost")) == 0
        assert index.is_cached(AuthorId("a"))

    def test_invalidate_reachable_keeps_outside_sources(self, chain):
        """Cached maps of sources outside the graph (empty maps) survive:
        a membership event inside the graph cannot make them reachable."""
        index = HopIndex(chain)
        index.distances(AuthorId("ghost"))
        assert index.invalidate_reachable(AuthorId("a")) == 0
        assert index.is_cached(AuthorId("ghost"))

    def test_invalidate_source(self, chain):
        index = HopIndex(chain)
        index.distances(AuthorId("a"))
        assert index.invalidate_source(AuthorId("a"))
        assert not index.invalidate_source(AuthorId("a"))  # already gone

    def test_invalidate_all(self, chain):
        index = HopIndex(chain)
        index.distances(AuthorId("a"))
        index.distances(AuthorId("b"))
        assert index.invalidate_all() == 2
        assert index.n_cached == 0

    def test_recompute_after_invalidation_is_correct(self, chain):
        index = HopIndex(chain)
        before, _ = index.distances(AuthorId("a"))
        index.invalidate_all()
        after, hit = index.distances(AuthorId("a"))
        assert not hit
        assert after == before
