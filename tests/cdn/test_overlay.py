"""Unit tests for repro.cdn.overlay (availability-overlap graphs)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import NodeId
from repro.cdn.overlay import (
    build_availability_graph,
    expected_access_availability,
    pairwise_overlap,
    select_cover,
)
from repro.sim.availability import AlwaysOn, Diurnal, TraceDriven
from repro.sim.network import GeoPoint, NetworkModel

N = [NodeId(f"n{i}") for i in range(6)]


class TestPairwiseOverlap:
    def test_always_on_full_overlap(self):
        assert pairwise_overlap(AlwaysOn(), N[0], N[1]) == 1.0

    def test_diurnal_uses_closed_form(self):
        m = Diurnal(duty_hours=10.0, seed=0)
        assert pairwise_overlap(m, N[0], N[1]) == pytest.approx(m.overlap(N[0], N[1]))

    def test_disjoint_traces_no_overlap(self):
        m = TraceDriven({N[0]: [(0.0, 43200.0)], N[1]: [(43200.0, 86400.0)]})
        assert pairwise_overlap(m, N[0], N[1], samples=96) == 0.0

    def test_partial_trace_overlap(self):
        m = TraceDriven({N[0]: [(0.0, 86400.0)], N[1]: [(0.0, 43200.0)]})
        assert pairwise_overlap(m, N[0], N[1], samples=96) == pytest.approx(0.5, abs=0.05)

    def test_invalid_sampling(self):
        with pytest.raises(ConfigurationError):
            pairwise_overlap(TraceDriven({}), N[0], N[1], samples=0)


class TestBuildGraph:
    def test_always_on_is_complete(self):
        g = build_availability_graph(N, AlwaysOn())
        assert g.number_of_edges() == len(N) * (len(N) - 1) // 2
        for _, _, d in g.edges(data=True):
            assert d["overlap"] == 1.0
            assert d["cost"] == d["distance"]

    def test_min_overlap_prunes(self):
        m = TraceDriven(
            {
                N[0]: [(0.0, 86400.0)],
                N[1]: [(0.0, 86400.0)],
                N[2]: [(0.0, 860.0)],  # ~1% overlap with others
            }
        )
        g = build_availability_graph(N[:3], m, min_overlap=0.5, samples=200)
        assert g.has_edge(N[0], N[1])
        assert not g.has_edge(N[0], N[2])

    def test_network_distances_used(self):
        net = NetworkModel(default_bandwidth_bps=8e6)
        net.add_node(N[0], GeoPoint(0, 0))
        net.add_node(N[1], GeoPoint(0, 1))
        net.add_node(N[2], GeoPoint(0, 120))
        g = build_availability_graph(N[:3], AlwaysOn(), network=net)
        assert g.edges[N[0], N[2]]["distance"] > g.edges[N[0], N[1]]["distance"]

    def test_empty_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            build_availability_graph([], AlwaysOn())

    def test_bad_min_overlap(self):
        with pytest.raises(ConfigurationError):
            build_availability_graph(N, AlwaysOn(), min_overlap=2.0)


class TestSelectCover:
    def test_single_host_covers_complete_graph(self):
        g = build_availability_graph(N, AlwaysOn())
        sel = select_cover(g)
        assert len(sel.selected) == 1
        assert sel.coverage == 1.0
        assert sel.uncovered == frozenset()

    def test_isolated_nodes_reported_uncovered(self):
        m = TraceDriven(
            {
                N[0]: [(0.0, 86400.0)],
                N[1]: [(0.0, 86400.0)],
                N[2]: [],  # never online -> isolated
            }
        )
        g = build_availability_graph(N[:3], m, samples=60)
        sel = select_cover(g)
        assert N[2] in sel.uncovered
        assert sel.coverage == pytest.approx(2 / 3)

    def test_budget_limits_picks(self):
        # path graph via traces: three disjoint pairs
        traces = {}
        for i in range(0, 6, 2):
            start = i * 14400.0 % 86400.0
            traces[N[i]] = [(start, start + 14000.0)]
            traces[N[i + 1]] = [(start, start + 14000.0)]
        m = TraceDriven(traces)
        g = build_availability_graph(N, m, samples=200, min_overlap=0.05)
        sel = select_cover(g, budget=1)
        assert len(sel.selected) == 1
        assert len(sel.uncovered) >= 2  # other pairs uncovered

    def test_prefers_cheap_edges(self):
        net = NetworkModel(default_bandwidth_bps=8e6)
        net.add_node(N[0], GeoPoint(0, 0))
        net.add_node(N[1], GeoPoint(0, 0.5))
        net.add_node(N[2], GeoPoint(0, 1))
        g = build_availability_graph(N[:3], AlwaysOn(), network=net)
        sel = select_cover(g)
        # middle node covers both neighbors with the cheapest edges
        assert sel.selected[0] == N[1]

    def test_invalid_budget(self):
        g = build_availability_graph(N, AlwaysOn())
        with pytest.raises(ConfigurationError):
            select_cover(g, budget=0)

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ConfigurationError):
            select_cover(nx.Graph())


class TestAccessAvailability:
    def test_selected_node_fully_available(self):
        g = build_availability_graph(N, AlwaysOn())
        sel = select_cover(g)
        host = sel.selected[0]
        assert expected_access_availability(g, sel, host) == 1.0

    def test_covered_node_availability_from_overlap(self):
        m = TraceDriven(
            {N[0]: [(0.0, 86400.0)], N[1]: [(0.0, 43200.0)]}
        )
        g = build_availability_graph(N[:2], m, samples=200)
        sel = select_cover(g, budget=1)
        other = N[1] if sel.selected[0] == N[0] else N[0]
        av = expected_access_availability(g, sel, other)
        assert av == pytest.approx(g.edges[N[0], N[1]]["overlap"])

    def test_unknown_node_rejected(self):
        g = build_availability_graph(N[:2], AlwaysOn())
        sel = select_cover(g)
        with pytest.raises(ConfigurationError):
            expected_access_availability(g, sel, NodeId("ghost"))
