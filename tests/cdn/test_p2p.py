"""Unit tests for repro.cdn.p2p (decentralized discovery)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId, SegmentId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.content import segment_dataset
from repro.cdn.p2p import GossipIndex, index_from_server
from repro.cdn.placement import RandomPlacement
from repro.cdn.sharding import ShardedAllocationRouter
from repro.cdn.storage import StorageRepository
from repro.obs import Registry

from ..conftest import pub

SEG = SegmentId("d:seg0")


@pytest.fixture
def chain_graph():
    """a - b - c - d - e."""
    return build_coauthorship_graph(
        Corpus([pub(f"p{i}", 2009, x, y) for i, (x, y) in enumerate(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]
        )])
    )


class TestAnnounce:
    def test_gossip_reaches_neighbors(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=1)
        informed = index.announce(AuthorId("c"), SEG)
        assert informed == 2  # b and d
        assert index.known_holders(AuthorId("b"), SEG) == [AuthorId("c")]
        assert index.known_holders(AuthorId("a"), SEG) == []

    def test_two_rounds_reach_two_hops(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=2)
        index.announce(AuthorId("c"), SEG)
        assert index.known_holders(AuthorId("a"), SEG) == [AuthorId("c")]

    def test_zero_rounds_no_gossip(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=0)
        assert index.announce(AuthorId("c"), SEG) == 0
        assert index.known_holders(AuthorId("b"), SEG) == []
        assert index.known_holders(AuthorId("c"), SEG) == [AuthorId("c")]

    def test_unknown_holder_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            GossipIndex(chain_graph).announce(AuthorId("zz"), SEG)

    def test_invalid_rounds(self, chain_graph):
        with pytest.raises(ConfigurationError):
            GossipIndex(chain_graph, gossip_rounds=-1)


class TestRetract:
    def test_stale_gossip_filtered_by_liveness(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=1)
        index.announce(AuthorId("c"), SEG)
        index.retract(AuthorId("c"), SEG)
        # b's gossip entry survives but is filtered against ground truth
        assert index.known_holders(AuthorId("b"), SEG) == []

    def test_stale_entry_purged_and_counted(self, chain_graph):
        registry = Registry()
        index = GossipIndex(chain_graph, gossip_rounds=1, registry=registry)
        index.announce(AuthorId("c"), SEG)
        index.retract(AuthorId("c"), SEG)

        def stale_count() -> int:
            entry = registry.snapshot()["counters"].get("p2p.lookup.stale")
            return int(entry["value"]) if entry else 0

        # first consult hits the stale entry: counted and purged
        assert index.known_holders(AuthorId("b"), SEG) == []
        assert stale_count() == 1
        assert index._known.get(AuthorId("b"), {}) == {}
        # second consult pays nothing: the entry is gone
        assert index.known_holders(AuthorId("b"), SEG) == []
        assert stale_count() == 1

    def test_purge_keeps_other_segments(self, chain_graph):
        other = SegmentId("d:seg1")
        index = GossipIndex(chain_graph, gossip_rounds=1)
        index.announce(AuthorId("c"), SEG)
        index.announce(AuthorId("c"), other)
        index.retract(AuthorId("c"), SEG)
        index.known_holders(AuthorId("b"), SEG)  # purges only the stale seg
        assert index.known_holders(AuthorId("b"), other) == [AuthorId("c")]

    def test_reannounce_after_purge_is_found_again(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=1)
        index.announce(AuthorId("c"), SEG)
        index.retract(AuthorId("c"), SEG)
        index.known_holders(AuthorId("b"), SEG)
        index.announce(AuthorId("c"), SEG)
        assert index.known_holders(AuthorId("b"), SEG) == [AuthorId("c")]


class TestLookup:
    def test_own_holding_is_zero_hops(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=1)
        index.announce(AuthorId("a"), SEG)
        r = index.lookup(AuthorId("a"), SEG, ttl=0)
        assert r.found and r.holder == "a" and r.hops == 0 and r.messages == 0

    def test_neighbor_known_via_gossip_costs_nothing(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=1)
        index.announce(AuthorId("b"), SEG)
        r = index.lookup(AuthorId("a"), SEG, ttl=0)
        assert r.found and r.holder == "b" and r.hops == 1 and r.messages == 0

    def test_flood_finds_distant_holder_within_ttl(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=1)
        index.announce(AuthorId("e"), SEG)
        # a -> b (knows nothing) -> c (knows nothing) -> d (knows e holds)
        r = index.lookup(AuthorId("a"), SEG, ttl=3)
        assert r.found and r.holder == "e"
        assert r.hops == 4
        assert r.messages == 3

    def test_ttl_limits_reach(self, chain_graph):
        index = GossipIndex(chain_graph, gossip_rounds=0)
        index.announce(AuthorId("e"), SEG)
        r = index.lookup(AuthorId("a"), SEG, ttl=2)
        assert not r.found
        assert r.messages == 2  # queried b and c

    def test_unknown_requester_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            GossipIndex(chain_graph).lookup(AuthorId("zz"), SEG)

    def test_invalid_ttl(self, chain_graph):
        with pytest.raises(ConfigurationError):
            GossipIndex(chain_graph).lookup(AuthorId("a"), SEG, ttl=-1)


class TestIndexFromServer:
    def test_reflects_placements(self, chain_graph):
        server = AllocationServer(chain_graph, RandomPlacement(), seed=0)
        for a in chain_graph.nodes():
            server.register_repository(
                AuthorId(a), StorageRepository(NodeId(f"n-{a}"), 10_000)
            )
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = server.publish_dataset(ds, n_replicas=2)
        index = index_from_server(server, gossip_rounds=1)
        holders = {server.author_of(r.node_id) for r in replicas}
        for holder in holders:
            assert index.holds(holder, ds.segments[0].segment_id)
        # any member finds a replica with a generous TTL
        r = index.lookup(AuthorId("c"), ds.segments[0].segment_id, ttl=4)
        assert r.found

    def test_skips_stale_replicas(self, chain_graph):
        server = AllocationServer(chain_graph, RandomPlacement(), seed=0)
        for a in chain_graph.nodes():
            server.register_repository(
                AuthorId(a), StorageRepository(NodeId(f"n-{a}"), 10_000)
            )
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        (replica,) = server.publish_dataset(ds, n_replicas=1)
        server.node_offline(replica.node_id)
        index = index_from_server(server)
        holder = server.author_of(replica.node_id)
        assert not index.holds(holder, ds.segments[0].segment_id)

    def test_accepts_sharded_router(self, chain_graph):
        router = ShardedAllocationRouter(
            chain_graph, RandomPlacement(), n_shards=2, seed=0
        )
        for a in chain_graph.nodes():
            router.register_repository(
                AuthorId(a), StorageRepository(NodeId(f"n-{a}"), 10_000)
            )
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        replicas = router.publish_dataset(ds, n_replicas=2)
        index = index_from_server(router, gossip_rounds=1)
        # the index reflects the *federated* servable view
        for r in replicas:
            assert index.holds(router.author_of(r.node_id), r.segment_id)
        found = index.lookup(AuthorId("c"), ds.segments[0].segment_id, ttl=4)
        assert found.found

    def test_rejects_unknown_server_type(self, chain_graph):
        with pytest.raises(ConfigurationError, match="AllocationServer"):
            index_from_server(object())  # type: ignore[arg-type]
