"""Unit tests for repro.cdn.partitioning."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, GraphError
from repro.ids import AuthorId, SegmentId
from repro.social.graph import CoauthorshipGraph, build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.partitioning import SocialPartitioner

from ..conftest import pub


@pytest.fixture
def two_communities():
    """Two 4-cliques bridged by one edge; clear community structure."""
    pubs = [
        pub("l", 2009, "a1", "a2", "a3", "a4"),
        pub("r", 2009, "b1", "b2", "b3", "b4"),
        pub("bridge", 2010, "a1", "b1"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


SEGS = [SegmentId(f"d:seg{i}") for i in range(4)]


class TestConstruction:
    def test_detects_communities_by_default(self, two_communities):
        p = SocialPartitioner(two_communities)
        assert len(p.communities) == 2

    def test_explicit_communities_validated(self, two_communities):
        with pytest.raises(ConfigurationError, match="cover"):
            SocialPartitioner(two_communities, communities=[{AuthorId("a1")}])

    def test_overlapping_communities_rejected(self, two_communities):
        """A covering family that double-assigns an author is not a
        partition and must be rejected like ``modularity`` rejects it."""
        left = {AuthorId(a) for a in ("a1", "a2", "a3", "a4", "b1")}
        right = {AuthorId(a) for a in ("b1", "b2", "b3", "b4")}
        with pytest.raises(ConfigurationError, match="overlap"):
            SocialPartitioner(two_communities, communities=[left, right])

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(GraphError):
            SocialPartitioner(CoauthorshipGraph(nx.Graph()))


class TestPartition:
    def test_usage_driven_assignment(self, two_communities):
        p = SocialPartitioner(two_communities)
        accesses = [
            (AuthorId("a1"), SEGS[0]),
            (AuthorId("a2"), SEGS[0]),
            (AuthorId("b1"), SEGS[1]),
        ]
        result = p.partition(SEGS[:2], accesses)
        comm_a = next(i for i, c in enumerate(p.communities) if "a1" in c)
        comm_b = next(i for i, c in enumerate(p.communities) if "b1" in c)
        assert result.community_of_segment[SEGS[0]] == comm_a
        assert result.community_of_segment[SEGS[1]] == comm_b

    def test_hosts_are_high_degree_members(self, two_communities):
        p = SocialPartitioner(two_communities)
        result = p.partition(SEGS[:1], [(AuthorId("a2"), SEGS[0])])
        host = result.host_of_segment[SEGS[0]]
        comm = result.community_of_segment[SEGS[0]]
        assert host in result.communities[comm]

    def test_unobserved_segments_round_robin(self, two_communities):
        p = SocialPartitioner(two_communities)
        result = p.partition(SEGS)
        comms = [result.community_of_segment[s] for s in SEGS]
        assert comms == [0, 1, 0, 1]

    def test_majority_wins_with_ties_to_lower_index(self, two_communities):
        p = SocialPartitioner(two_communities)
        accesses = [(AuthorId("a1"), SEGS[0]), (AuthorId("b1"), SEGS[0])]
        result = p.partition(SEGS[:1], accesses)
        assert result.community_of_segment[SEGS[0]] == 0

    def test_unknown_authors_ignored(self, two_communities):
        p = SocialPartitioner(two_communities)
        result = p.partition(SEGS[:1], [(AuthorId("stranger"), SEGS[0])])
        assert SEGS[0] in result.community_of_segment  # falls back to round robin

    def test_empty_segments_rejected(self, two_communities):
        with pytest.raises(ConfigurationError):
            SocialPartitioner(two_communities).partition([])


class TestLocality:
    def test_perfect_locality(self, two_communities):
        p = SocialPartitioner(two_communities)
        accesses = [(AuthorId("a1"), SEGS[0]), (AuthorId("a3"), SEGS[0])]
        result = p.partition(SEGS[:1], accesses)
        assert result.locality(accesses) == 1.0

    def test_cross_community_access_reduces_locality(self, two_communities):
        p = SocialPartitioner(two_communities)
        train = [(AuthorId("a1"), SEGS[0])]
        result = p.partition(SEGS[:1], train)
        mixed = [(AuthorId("a1"), SEGS[0]), (AuthorId("b1"), SEGS[0])]
        assert result.locality(mixed) == 0.5

    def test_empty_stream_locality_one(self, two_communities):
        p = SocialPartitioner(two_communities)
        result = p.partition(SEGS[:1])
        assert result.locality([]) == 1.0

    def test_unknown_author_counts_against_locality(self, two_communities):
        """Accesses by authors outside every community are non-local."""
        p = SocialPartitioner(two_communities)
        result = p.partition(SEGS[:1], [(AuthorId("a1"), SEGS[0])])
        stream = [
            (AuthorId("a1"), SEGS[0]),
            (AuthorId("stranger"), SEGS[0]),
        ]
        assert result.locality(stream) == 0.5

    def test_unassigned_segment_counts_against_locality(self, two_communities):
        """Accesses to segments the partition never assigned are non-local."""
        p = SocialPartitioner(two_communities)
        result = p.partition(SEGS[:1], [(AuthorId("a1"), SEGS[0])])
        ghost = SegmentId("never-partitioned:seg0")
        stream = [
            (AuthorId("a1"), SEGS[0]),
            (AuthorId("a1"), ghost),
        ]
        assert result.locality(stream) == 0.5
        assert result.locality([(AuthorId("a1"), ghost)]) == 0.0

    def test_segments_of_community(self, two_communities):
        p = SocialPartitioner(two_communities)
        result = p.partition(SEGS)
        assert set(result.segments_of_community(0)) == {SEGS[0], SEGS[2]}
        with pytest.raises(ConfigurationError):
            result.segments_of_community(9)
