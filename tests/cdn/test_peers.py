"""Peer-assisted delivery tier tests (repro.cdn.peers).

Topology used throughout: a tiny flash-crowd shape —

    o-1 -- o-2        (origin clique: owns + hosts the replicas)
     |
    relay
     |
    c-1 -- c-2 -- c-3 (crowd clique: tight caches, mutual 1-hop peers)

Crowd members are 3 hops from every replica but 1 hop from each other,
so a crowd peer with a fresh lease outranks the repository tier for a
crowd requester; ties (and every failure) go back to the repository.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, NodeId
from repro.obs import Registry
from repro.scdn import SCDN, SCDNConfig
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus

from ..conftest import pub

SEG_BYTES = 100_000
#: tight member storage: user cache = half = one segment exactly
TIGHT = 2 * SEG_BYTES


def crowd_graph():
    pubs = [
        pub("p1", 2009, "o-1", "o-2"),
        pub("p2", 2010, "o-1", "relay"),
        pub("p3", 2010, "relay", "c-1"),
        pub("p4", 2010, "c-1", "c-2", "c-3"),
        pub("p5", 2011, "c-1", "c-2"),
        pub("p6", 2011, "c-2", "c-3"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


def build_net(seed=3, **overrides):
    """Peer-tier deployment with replicas pinned on the origin clique."""
    defaults = dict(
        n_replicas=2,
        proximity_hops=6,
        transfer_failure_prob=0.0,
        peer_tier=True,
    )
    defaults.update(overrides)
    net = SCDN(
        crowd_graph(),
        config=SCDNConfig(**defaults),
        seed=seed,
        registry=Registry(),
    )
    # origin joins roomy, publishes, then the crowd joins tight: every
    # repository replica lives on o-1/o-2, three hops from the crowd
    for a in ("o-1", "o-2"):
        net.join(AuthorId(a))
    net.publish(AuthorId("o-1"), "ds", 2 * SEG_BYTES, n_segments=2)
    for a in ("relay", "c-1", "c-2", "c-3"):
        net.join(AuthorId(a), capacity_bytes=TIGHT)
    replica_nodes = {
        r.node_id for r in net.server.catalog.iter_replicas()
    }
    assert replica_nodes <= {NodeId("o-1"), NodeId("o-2")}
    return net


def seg_ids(net):
    ds = net.server.catalog.dataset(next(iter(net.server.catalog.datasets())).dataset_id)
    return [s.segment_id for s in ds.segments]


def counter(net, name) -> int:
    entry = net.obs.snapshot()["counters"].get(name)
    return int(entry["value"]) if entry else 0


class TestMintAndServe:
    def test_fetch_mints_lease_then_serves_closer_requester(self):
        net = build_net()
        seg = seg_ids(net)[0]
        out = net.clients[AuthorId("c-3")].access_segment(seg)
        assert out.ok and out.source == "remote"
        assert net.peers.has_active_lease(NodeId("c-3"), seg)
        repo_before = counter(net, "alloc.serves.repository")
        out2 = net.clients[AuthorId("c-2")].access_segment(seg)
        assert out2.ok
        assert net.clients[AuthorId("c-2")].stats.peer_fetches == 1
        assert out2.social_hops == 1  # peer next door, replicas 3 hops out
        assert counter(net, "peer.serves") == 1
        # the peer read is never charged to the repository tier
        assert counter(net, "alloc.serves.repository") == repo_before

    def test_tie_goes_to_repository(self):
        net = build_net()
        seg = seg_ids(net)[0]
        # o-2 fetches (1 hop from o-1's replica)... a lease on o-2 is
        # never *strictly* closer for relay (o-2 and the o-1 replica are
        # both reachable; replica distance 1 via o-1) — relay reads from
        # the repository tier
        net.clients[AuthorId("c-3")].access_segment(seg)
        out = net.clients[AuthorId("relay")].access_segment(seg)
        assert out.ok
        assert net.clients[AuthorId("relay")].stats.peer_fetches == 0


class TestAdmissionGates:
    def test_zero_capacity_peers_never_admitted(self):
        net = build_net(peer_cache_segments=0)
        seg = seg_ids(net)[0]
        out = net.clients[AuthorId("c-3")].access_segment(seg)
        assert out.ok
        assert net.peers.n_active_leases == 0
        assert counter(net, "peer.rejected.capacity") == 1
        out2 = net.clients[AuthorId("c-2")].access_segment(seg)
        assert out2.ok
        assert net.clients[AuthorId("c-2")].stats.peer_fetches == 0

    def test_untrusted_requester_fetch_mints_no_peer(self):
        net = build_net()
        seg = seg_ids(net)[0]
        # c-3 falls out of the trusted graph after joining (e.g. a trust
        # re-derivation dropped the author); its fetch may still be
        # policy-permitted, but it never becomes a serving peer
        pruned = build_coauthorship_graph(
            Corpus(
                [
                    pub("p1", 2009, "o-1", "o-2"),
                    pub("p2", 2010, "o-1", "relay"),
                    pub("p3", 2010, "relay", "c-1"),
                    pub("p5", 2011, "c-1", "c-2"),
                ]
            )
        )
        net.server.graph = pruned
        out = net.clients[AuthorId("c-2")].access_segment(seg)
        assert out.ok
        assert net.peers.has_active_lease(NodeId("c-2"), seg)
        out3 = net.clients[AuthorId("c-3")].access_segment(seg)
        assert out3.ok
        assert not net.peers.has_active_lease(NodeId("c-3"), seg)
        assert counter(net, "peer.rejected.untrusted") == 1

    def test_untrusted_peer_retired_from_discovery_mid_lease(self):
        net = build_net()
        seg = seg_ids(net)[0]
        net.clients[AuthorId("c-3")].access_segment(seg)
        assert net.peers.candidates(seg, requester_node=NodeId("c-2"))
        pruned = build_coauthorship_graph(
            Corpus(
                [
                    pub("p1", 2009, "o-1", "o-2"),
                    pub("p2", 2010, "o-1", "relay"),
                    pub("p3", 2010, "relay", "c-1"),
                    pub("p5", 2011, "c-1", "c-2"),
                ]
            )
        )
        net.server.graph = pruned
        assert net.peers.candidates(seg, requester_node=NodeId("c-2")) == []
        out = net.clients[AuthorId("c-2")].access_segment(seg)
        assert out.ok
        assert net.clients[AuthorId("c-2")].stats.peer_fetches == 0


class TestLeaseLifecycle:
    def test_lease_expiry_mid_transfer_drains(self):
        net = build_net(peer_lease_ttl_s=10.0)
        seg = seg_ids(net)[0]
        net.clients[AuthorId("c-3")].access_segment(seg)
        serve = net.peers.begin_serve(NodeId("c-3"), seg)
        assert serve is not None
        net.engine.run(until=11.0)  # TTL fires while the read is pinned
        lease = net.peers.lease_of(NodeId("c-3"), seg)
        assert lease is not None and not lease.active  # draining
        assert counter(net, "peer.lease.expired") == 0  # not charged yet
        assert net.peers.candidates(seg, requester_node=NodeId("c-2")) == []
        net.peers.end_serve(serve, ok=True)
        assert counter(net, "peer.lease.expired") == 1
        assert counter(net, "peer.serves") == 1
        assert net.peers.lease_of(NodeId("c-3"), seg) is None

    def test_expiry_without_pin_closes_immediately(self):
        net = build_net(peer_lease_ttl_s=10.0)
        seg = seg_ids(net)[0]
        net.clients[AuthorId("c-3")].access_segment(seg)
        net.engine.run(until=11.0)
        assert not net.peers.has_active_lease(NodeId("c-3"), seg)
        assert counter(net, "peer.lease.expired") == 1

    def test_renewal_restarts_ttl(self):
        net = build_net(peer_lease_ttl_s=10.0)
        seg = seg_ids(net)[0]
        client = net.clients[AuthorId("c-3")]
        client.access_segment(seg)
        net.engine.run(until=6.0)
        # cache hit at t=6 re-offers and renews: the lease now runs to 16
        segment = net.server.catalog.segment(seg)
        net.peers.offer(NodeId("c-3"), segment)
        assert counter(net, "peer.renewed") == 1
        net.engine.run(until=11.0)
        assert net.peers.has_active_lease(NodeId("c-3"), seg)
        net.engine.run(until=17.0)
        assert not net.peers.has_active_lease(NodeId("c-3"), seg)
        assert counter(net, "peer.lease.expired") == 1

    def test_cache_eviction_retracts_lease(self):
        net = build_net()
        segs = seg_ids(net)
        client = net.clients[AuthorId("c-3")]
        client.access_segment(segs[0])
        assert net.peers.has_active_lease(NodeId("c-3"), segs[0])
        # one-segment cache: fetching the second evicts the first
        client.access_segment(segs[1])
        assert not net.peers.has_active_lease(NodeId("c-3"), segs[0])
        assert net.peers.has_active_lease(NodeId("c-3"), segs[1])
        assert counter(net, "peer.lease.evicted") == 1


class TestFailover:
    def test_peer_crash_falls_back_to_repository_no_phantom_expiry(self):
        net = build_net(peer_lease_ttl_s=50.0)
        seg = seg_ids(net)[0]
        net.clients[AuthorId("c-3")].access_segment(seg)
        injector = net.failure_injector(seed=0)
        injector.crash(NodeId("c-3"), at=1.0)
        net.engine.run(until=2.0)
        assert counter(net, "peer.leaves") == 1
        assert not net.peers.has_active_lease(NodeId("c-3"), seg)
        out = net.clients[AuthorId("c-2")].access_segment(seg)
        assert out.ok
        assert net.clients[AuthorId("c-2")].stats.peer_fetches == 0
        assert out.social_hops == 3  # served by the origin replicas
        # the crash cancelled the pending expiry: running past the TTL
        # fires no phantom lease-end for c-3 (c-2's fresh lease from the
        # fallback fetch is dropped first so nothing else can expire)
        net.peers.leave(NodeId("c-2"), reason="test-teardown")
        net.engine.run(until=60.0)
        assert counter(net, "peer.lease.expired") == 0

    def test_corrupt_peer_copy_fails_over_to_repository(self):
        net = build_net()
        seg = seg_ids(net)[0]
        net.clients[AuthorId("c-3")].access_segment(seg)
        assert net.peers.corrupt_copy(NodeId("c-3"), seg)
        client = net.clients[AuthorId("c-2")]
        out = client.access_segment(seg)
        # the peer ranked first, failed digest verification, and the
        # read failed over into the repository tier — integrity never
        # weakens, availability never suffers
        assert out.ok
        assert client.stats.peer_fetches == 0
        assert client.stats.failovers >= 1
        assert client.stats.integrity_failovers >= 1
        assert counter(net, "peer.serve.failures") == 1
        assert counter(net, "peer.serves") == 0

    def test_lease_gone_between_ranking_and_fetch_is_clean_failover(self):
        net = build_net()
        seg = seg_ids(net)[0]
        net.clients[AuthorId("c-3")].access_segment(seg)
        resolved = net.server.resolve(seg, AuthorId("c-2"), record=False)
        assert resolved.peer
        net.peers.leave(NodeId("c-3"))  # tab closed before the read
        out = net.clients[AuthorId("c-2")].access_segment(seg)
        assert out.ok
        assert net.clients[AuthorId("c-2")].stats.peer_fetches == 0


class TestRegistryValidation:
    def test_knob_validation(self):
        net = build_net()
        from repro.cdn.peers import PeerRegistry

        with pytest.raises(ConfigurationError):
            PeerRegistry(net.server.fabric, net.engine, lease_ttl_s=0.0)
        with pytest.raises(ConfigurationError):
            PeerRegistry(net.server.fabric, net.engine, cache_segments=-1)
        with pytest.raises(ConfigurationError):
            PeerRegistry(net.server.fabric, net.engine, max_concurrent_serves=0)

    def test_end_serve_twice_rejected(self):
        net = build_net()
        seg = seg_ids(net)[0]
        net.clients[AuthorId("c-3")].access_segment(seg)
        serve = net.peers.begin_serve(NodeId("c-3"), seg)
        net.peers.end_serve(serve, ok=True)
        with pytest.raises(ConfigurationError):
            net.peers.end_serve(serve, ok=True)

    def test_enable_peer_tier_idempotent(self):
        net = build_net()
        assert net.enable_peer_tier() is net.peers
