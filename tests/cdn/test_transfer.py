"""Unit tests for repro.cdn.transfer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TransferError
from repro.ids import NodeId, SegmentId
from repro.cdn.transfer import RetryPolicy, TransferClient, TransferRequest
from repro.rng import make_rng
from repro.sim.network import GeoPoint, NetworkModel


@pytest.fixture
def network():
    net = NetworkModel(base_latency_s=0.01, default_bandwidth_bps=8e6)  # 1 MB/s
    net.add_node(NodeId("chicago"), GeoPoint(41.9, -87.6))
    net.add_node(NodeId("karlsruhe"), GeoPoint(49.0, 8.4))
    net.add_node(NodeId("cardiff"), GeoPoint(51.5, -3.2), bandwidth_bps=4e6)
    return net


def req(size=1_000_000, src="chicago", dst="karlsruhe"):
    return TransferRequest(
        segment_id=SegmentId("d:seg0"),
        source=NodeId(src),
        dest=NodeId(dst),
        size_bytes=size,
    )


class TestRequestValidation:
    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            req(size=0)


class TestEstimates:
    def test_duration_includes_latency_and_drain(self, network):
        client = TransferClient(network)
        d = client.estimate_duration(req())
        # 1 MB over 1 MB/s ≈ 1 s plus latency
        assert 1.0 < d < 1.2

    def test_lower_endpoint_bandwidth_dominates(self, network):
        client = TransferClient(network)
        fast = client.estimate_duration(req(dst="karlsruhe"))
        slow = client.estimate_duration(req(dst="cardiff"))
        assert slow > fast

    def test_local_transfer_has_no_latency(self, network):
        client = TransferClient(network)
        d = client.estimate_duration(req(src="chicago", dst="chicago"))
        assert d == pytest.approx(1.0, abs=0.01)


class TestExecute:
    def test_success_path(self, network):
        client = TransferClient(network)
        result = client.execute(req())
        assert result.ok
        assert result.attempts == 1
        assert result.effective_bandwidth_bps > 0
        assert client.total_bytes_moved() == 1_000_000
        assert client.success_ratio() == 1.0

    def test_unknown_endpoint_rejected(self, network):
        client = TransferClient(network)
        with pytest.raises(TransferError):
            client.execute(req(src="nowhere"))
        with pytest.raises(TransferError):
            client.execute(req(dst="nowhere"))

    def test_retries_on_failure(self, network):
        client = TransferClient(network, failure_prob=0.5, max_attempts=50, seed=0)
        result = client.execute(req())
        assert result.ok
        # failed attempts cost time, plus the backoff waits between them
        single = client.estimate_duration(req())
        assert result.duration_s == pytest.approx(
            single * result.attempts + result.backoff_s
        )

    def test_gives_up_after_max_attempts(self, network):
        client = TransferClient(network, failure_prob=0.999, max_attempts=3, seed=0)
        results = [client.execute(req()) for _ in range(20)]
        failed = [r for r in results if not r.ok]
        assert failed, "expected some exhausted transfers at 99.9% failure"
        assert all(r.attempts == 3 for r in failed)
        assert client.success_ratio() < 1.0

    def test_failed_transfer_zero_effective_bandwidth(self, network):
        client = TransferClient(network, failure_prob=0.999, max_attempts=1, seed=1)
        result = next(r for r in (client.execute(req()) for _ in range(50)) if not r.ok)
        assert result.effective_bandwidth_bps == 0.0

    def test_transfer_ids_unique(self, network):
        client = TransferClient(network)
        ids = {client.execute(req()).transfer_id for _ in range(5)}
        assert len(ids) == 5


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_multiplier=2.0, max_backoff_s=100.0, jitter=0.0
        )
        rng = make_rng(0)
        waits = [policy.backoff_s(k, rng) for k in (1, 2, 3, 4)]
        assert waits == [1.0, 2.0, 4.0, 8.0]

    def test_backoff_capped(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_multiplier=10.0, max_backoff_s=5.0, jitter=0.0
        )
        assert policy.backoff_s(10, make_rng(0)) == 5.0

    def test_jitter_only_shrinks_the_wait(self):
        policy = RetryPolicy(base_backoff_s=2.0, jitter=0.5)
        rng = make_rng(3)
        for k in range(1, 6):
            raw = RetryPolicy(base_backoff_s=2.0, jitter=0.0).backoff_s(k, rng)
            jittered = policy.backoff_s(k, rng)
            assert 0.5 * raw <= jittered <= raw

    def test_zero_base_disables_backoff(self):
        policy = RetryPolicy(base_backoff_s=0.0)
        assert policy.backoff_s(5, make_rng(0)) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=2.0, max_backoff_s=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0, make_rng(0))


class TestBackoffExecution:
    def test_duration_includes_backoff(self, network):
        retry = RetryPolicy(max_attempts=50, base_backoff_s=1.0, jitter=0.0)
        client = TransferClient(network, failure_prob=0.5, retry=retry, seed=0)
        result = next(
            r for r in (client.execute(req()) for _ in range(50)) if r.attempts > 1
        )
        single = client.estimate_duration(req())
        assert result.backoff_s > 0
        assert result.duration_s == pytest.approx(
            single * result.attempts + result.backoff_s
        )

    def test_backoff_deterministic_under_fixed_seed(self, network):
        def run(seed):
            retry = RetryPolicy(max_attempts=10, base_backoff_s=0.5, jitter=0.5)
            client = TransferClient(network, failure_prob=0.4, retry=retry, seed=seed)
            return [
                (r.attempts, r.backoff_s, r.duration_s)
                for r in (client.execute(req()) for _ in range(30))
            ]

        assert run(123) == run(123)
        assert run(123) != run(124)

    def test_timeout_bounds_attempt_duration(self, network):
        # single attempt takes ~1s; a 0.25s deadline times every attempt out
        retry = RetryPolicy(max_attempts=3, timeout_s=0.25, base_backoff_s=0.0)
        client = TransferClient(network, failure_prob=0.0, retry=retry, seed=0)
        result = client.execute(req())
        assert not result.ok
        assert result.timeouts == result.attempts == 3
        assert result.duration_s == pytest.approx(0.75)

    def test_generous_timeout_is_inert(self, network):
        retry = RetryPolicy(max_attempts=3, timeout_s=1e6)
        client = TransferClient(network, retry=retry)
        result = client.execute(req())
        assert result.ok and result.timeouts == 0

    def test_backoff_metric_recorded(self, network):
        from repro.obs import Registry

        registry = Registry()
        retry = RetryPolicy(max_attempts=5, base_backoff_s=1.0)
        client = TransferClient(
            network, failure_prob=0.6, retry=retry, seed=2, registry=registry
        )
        for _ in range(30):
            client.execute(req())
        snap = registry.snapshot()
        assert snap["histograms"]["transfer.retry.backoff_s"]["count"] > 0
        assert "transfer.timeouts" in snap["counters"]

    def test_execute_or_raise(self, network):
        retry = RetryPolicy(max_attempts=2, timeout_s=0.01)
        client = TransferClient(network, retry=retry)
        with pytest.raises(TransferError, match="failed after 2 attempts"):
            client.execute_or_raise(req())
        ok_client = TransferClient(network)
        assert ok_client.execute_or_raise(req()).ok


class TestConfigValidation:
    def test_bad_failure_prob(self, network):
        with pytest.raises(ConfigurationError):
            TransferClient(network, failure_prob=1.0)

    def test_bad_attempts(self, network):
        with pytest.raises(ConfigurationError):
            TransferClient(network, max_attempts=0)

    def test_retry_overrides_max_attempts(self, network):
        client = TransferClient(
            network, max_attempts=7, retry=RetryPolicy(max_attempts=2)
        )
        assert client.max_attempts == 2


class TestVerifiedTransfers:
    """Digest verification on completed attempts (the anti-bit-rot path)."""

    def _client(self, network, digests, **kw):
        client = TransferClient(network, seed=1, **kw)
        client.set_digest_resolver(lambda node, seg: digests.get(node))
        return client

    def vreq(self, expected="good"):
        return TransferRequest(
            segment_id=SegmentId("d:seg0"),
            source=NodeId("chicago"),
            dest=NodeId("karlsruhe"),
            size_bytes=1_000_000,
            expected_digest=expected,
        )

    def test_matching_digest_passes(self, network):
        client = self._client(network, {NodeId("chicago"): "good"})
        result = client.execute(self.vreq())
        assert result.ok and result.checksum_failures == 0

    def test_mismatch_exhausts_attempts(self, network):
        client = self._client(
            network,
            {NodeId("chicago"): "rot1:good"},
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
        )
        result = client.execute(self.vreq())
        assert not result.ok
        assert result.checksum_failures == 3
        assert result.attempts == 3

    def test_mismatch_raises_integrity_error(self, network):
        from repro.errors import IntegrityError

        client = self._client(
            network,
            {NodeId("chicago"): "rot1:good"},
            retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0),
        )
        with pytest.raises(IntegrityError):
            client.execute_or_raise(self.vreq())
        # IntegrityError is a TransferError: existing failover paths catch it
        with pytest.raises(TransferError):
            client.execute_or_raise(self.vreq())

    def test_checksum_failures_metric(self, network):
        from repro.obs import Registry

        registry = Registry()
        client = TransferClient(network, seed=1, registry=registry)
        client.set_digest_resolver(lambda node, seg: "rot1:good")
        client.execute(self.vreq())
        snap = registry.snapshot()
        assert snap["counters"]["transfer.checksum.failures"]["value"] == 3

    def test_no_expected_digest_skips_verification(self, network):
        client = self._client(network, {NodeId("chicago"): "rot1:good"})
        assert client.execute(self.vreq(expected=None)).ok

    def test_no_resolver_skips_verification(self, network):
        client = TransferClient(network, seed=1)
        assert client.execute(self.vreq()).ok

    def test_unknown_source_digest_skips_verification(self, network):
        client = self._client(network, {})  # resolver returns None
        assert client.execute(self.vreq()).ok

    def test_resolver_must_be_callable(self, network):
        client = TransferClient(network)
        with pytest.raises(ConfigurationError):
            client.set_digest_resolver("not-callable")
        client.set_digest_resolver(None)  # explicit disable is fine


class TestPartitionedTransfer:
    def test_unreachable_fails_fast(self, network):
        from repro.errors import UnreachableError
        from repro.obs import Registry

        registry = Registry()
        client = TransferClient(network, registry=registry)
        network.partition([[NodeId("chicago")], [NodeId("karlsruhe")]])
        with pytest.raises(UnreachableError):
            client.execute(req())
        snap = registry.snapshot()["counters"]
        assert snap["transfer.unreachable"]["value"] == 1
        # fail-fast: no attempt was burned, no failure recorded
        assert snap["transfer.failed"]["value"] == 0
        network.heal()
        assert client.execute(req()).ok

    def test_unreachable_is_a_transfer_error(self, network):
        # failover paths catch TransferError and move to the next replica;
        # a severed link must take that path, not crash the client
        from repro.errors import UnreachableError

        client = TransferClient(network)
        network.partition([[NodeId("chicago")], [NodeId("karlsruhe")]])
        with pytest.raises(TransferError):
            client.execute(req())
        assert issubclass(UnreachableError, TransferError)

    def test_unreachable_consumes_no_randomness(self, network):
        # the fail-fast check runs before any RNG draw, so a partitioned
        # request leaves the retry stream exactly where it was
        a = TransferClient(network, failure_prob=0.5, max_attempts=5, seed=0)
        b = TransferClient(network, failure_prob=0.5, max_attempts=5, seed=0)
        network.partition([[NodeId("chicago")], [NodeId("karlsruhe")]])
        with pytest.raises(TransferError):
            a.execute(req())
        network.heal()
        ra = a.execute(req())
        rb = b.execute(req())
        assert (ra.ok, ra.attempts, ra.backoff_s) == (rb.ok, rb.attempts, rb.backoff_s)

    def test_same_side_transfer_unaffected(self, network):
        client = TransferClient(network)
        network.partition(
            [[NodeId("chicago"), NodeId("cardiff")], [NodeId("karlsruhe")]]
        )
        assert client.execute(req(dst="cardiff")).ok
