"""Unit tests for repro.cdn.transfer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TransferError
from repro.ids import NodeId, SegmentId
from repro.cdn.transfer import TransferClient, TransferRequest
from repro.sim.network import GeoPoint, NetworkModel


@pytest.fixture
def network():
    net = NetworkModel(base_latency_s=0.01, default_bandwidth_bps=8e6)  # 1 MB/s
    net.add_node(NodeId("chicago"), GeoPoint(41.9, -87.6))
    net.add_node(NodeId("karlsruhe"), GeoPoint(49.0, 8.4))
    net.add_node(NodeId("cardiff"), GeoPoint(51.5, -3.2), bandwidth_bps=4e6)
    return net


def req(size=1_000_000, src="chicago", dst="karlsruhe"):
    return TransferRequest(
        segment_id=SegmentId("d:seg0"),
        source=NodeId(src),
        dest=NodeId(dst),
        size_bytes=size,
    )


class TestRequestValidation:
    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            req(size=0)


class TestEstimates:
    def test_duration_includes_latency_and_drain(self, network):
        client = TransferClient(network)
        d = client.estimate_duration(req())
        # 1 MB over 1 MB/s ≈ 1 s plus latency
        assert 1.0 < d < 1.2

    def test_lower_endpoint_bandwidth_dominates(self, network):
        client = TransferClient(network)
        fast = client.estimate_duration(req(dst="karlsruhe"))
        slow = client.estimate_duration(req(dst="cardiff"))
        assert slow > fast

    def test_local_transfer_has_no_latency(self, network):
        client = TransferClient(network)
        d = client.estimate_duration(req(src="chicago", dst="chicago"))
        assert d == pytest.approx(1.0, abs=0.01)


class TestExecute:
    def test_success_path(self, network):
        client = TransferClient(network)
        result = client.execute(req())
        assert result.ok
        assert result.attempts == 1
        assert result.effective_bandwidth_bps > 0
        assert client.total_bytes_moved() == 1_000_000
        assert client.success_ratio() == 1.0

    def test_unknown_endpoint_rejected(self, network):
        client = TransferClient(network)
        with pytest.raises(TransferError):
            client.execute(req(src="nowhere"))
        with pytest.raises(TransferError):
            client.execute(req(dst="nowhere"))

    def test_retries_on_failure(self, network):
        client = TransferClient(network, failure_prob=0.5, max_attempts=50, seed=0)
        result = client.execute(req())
        assert result.ok
        # failed attempts cost time: duration is a multiple of single attempt
        single = client.estimate_duration(req())
        assert result.duration_s == pytest.approx(single * result.attempts)

    def test_gives_up_after_max_attempts(self, network):
        client = TransferClient(network, failure_prob=0.999, max_attempts=3, seed=0)
        results = [client.execute(req()) for _ in range(20)]
        failed = [r for r in results if not r.ok]
        assert failed, "expected some exhausted transfers at 99.9% failure"
        assert all(r.attempts == 3 for r in failed)
        assert client.success_ratio() < 1.0

    def test_failed_transfer_zero_effective_bandwidth(self, network):
        client = TransferClient(network, failure_prob=0.999, max_attempts=1, seed=1)
        result = next(r for r in (client.execute(req()) for _ in range(50)) if not r.ok)
        assert result.effective_bandwidth_bps == 0.0

    def test_transfer_ids_unique(self, network):
        client = TransferClient(network)
        ids = {client.execute(req()).transfer_id for _ in range(5)}
        assert len(ids) == 5


class TestConfigValidation:
    def test_bad_failure_prob(self, network):
        with pytest.raises(ConfigurationError):
            TransferClient(network, failure_prob=1.0)

    def test_bad_attempts(self, network):
        with pytest.raises(ConfigurationError):
            TransferClient(network, max_attempts=0)
