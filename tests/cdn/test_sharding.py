"""Differential tests for the sharded allocation tier.

The equivalence contract of :class:`~repro.cdn.sharding.ShardedAllocationRouter`:
with one shard, every operation is bit-identical to an unsharded
:class:`~repro.cdn.allocation.AllocationServer`; with N shards, resolves,
repairs, migrations, and whole chaos campaigns still produce the exact
same replica ids, rankings, and reports — the shared fabric, shared id
allocator, shared RNG, and globally ordered repair queue make the
federation indistinguishable from one server for the same operation
sequence.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import CatalogError, ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId, SegmentId
from repro.obs import Registry
from repro.perf import (
    _request_workload,
    build_resolve_deployment,
    build_sharded_deployment,
)
from repro.sim.engine import SimulationEngine
from repro.sim.failures import FailureInjector
from repro.sim.network import GeoPoint, NetworkModel
from repro.social.graph import CoauthorshipGraph
from repro.cdn.allocation import resolve_candidates_reference
from repro.cdn.content import segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.sharding import ShardedAllocationRouter, _creation_key
from repro.cdn.storage import StorageRepository

from ..conftest import pub
from .test_allocation_bugfixes import graph_of


def ranking(candidates):
    """Comparable projection of a candidate list."""
    return [
        (c.replica.replica_id, c.replica.node_id, c.social_hops)
        for c in candidates
    ]


def twin(n_shards, **kwargs):
    """An unsharded deployment and its sharded twin (same seeds/ops)."""
    kwargs.setdefault("spread_owners", True)
    flat = build_resolve_deployment(registry=Registry(), **kwargs)
    sharded = build_sharded_deployment(
        registry=Registry(), n_shards=n_shards, **kwargs
    )
    return flat, sharded


def make_router(graph, authors, *, n_shards=2, capacity=10_000, seed=0):
    """A router over ``graph`` with one registered repo per author."""
    router = ShardedAllocationRouter(
        graph, RandomPlacement(), n_shards=n_shards, seed=seed, registry=Registry()
    )
    for a in authors:
        router.register_repository(
            AuthorId(a), StorageRepository(NodeId(f"node-{a}"), capacity)
        )
    return router


class TestConstruction:
    def test_bad_shard_count_rejected(self):
        g = graph_of(pub("p", 2009, "a", "b"))
        with pytest.raises(ConfigurationError):
            ShardedAllocationRouter(g, RandomPlacement(), n_shards=0)

    def test_counters_shared_across_shards(self):
        """All shards resolve instruments by name from one registry —
        the same objects an unsharded server would own."""
        _, (router, _, _) = twin(2, far_clusters=4)
        for shard in router.shards[1:]:
            assert shard.obs is router.shards[0].obs
            assert (
                shard._m_resolve_total is router.shards[0]._m_resolve_total
            )


class TestSingleShardEquivalence:
    """n_shards=1: the router must be bit-identical to today's server."""

    def test_replica_id_sequence_identical(self):
        (flat, _, _), (router, _, _) = twin(1, far_clusters=4)
        flat_ids = [r.replica_id for r in flat.catalog.iter_replicas()]
        routed_ids = [r.replica_id for r in router.catalog.iter_replicas()]
        assert flat_ids == routed_ids

    def test_resolution_identical_and_matches_reference(self):
        (flat, segments, authors), (router, _, _) = twin(1, far_clusters=4)
        for seg, req in _request_workload(segments, authors, 150):
            routed = router.resolve_candidates(seg, req)
            assert ranking(routed) == ranking(flat.resolve_candidates(seg, req))
            # the pre-index reference runs unmodified against the router
            assert ranking(routed) == ranking(
                resolve_candidates_reference(router, seg, req)
            )


class TestMultiShardEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_resolution_identical(self, n_shards):
        (flat, segments, authors), (router, _, _) = twin(
            n_shards, far_clusters=6, datasets=8
        )
        assert [r.replica_id for r in flat.catalog.iter_replicas()] == [
            r.replica_id for r in router.catalog.iter_replicas()
        ]
        for seg, req in _request_workload(segments, authors, 200):
            assert ranking(router.resolve_candidates(seg, req)) == ranking(
                flat.resolve_candidates(seg, req)
            )

    def test_resolve_many_matches_sequential_order(self):
        (flat, segments, authors), (router, _, _) = twin(
            3, far_clusters=6, datasets=6
        )
        workload = _request_workload(segments, authors, 90)
        flat_out = [flat.resolve(seg, req) for seg, req in workload]
        routed_out = router.resolve_many(workload)
        assert [(r.replica.replica_id, r.social_hops) for r in flat_out] == [
            (r.replica.replica_id, r.social_hops) for r in routed_out
        ]

    def test_resolve_many_rejects_unknown_segment_up_front(self):
        _, (router, segments, authors) = twin(2, far_clusters=4)
        with pytest.raises(CatalogError):
            router.resolve_many(
                [(segments[0], authors[0]), (SegmentId("no:seg0"), authors[0])]
            )

    def test_segments_actually_spread_across_shards(self):
        """The bench twin must exercise more than one site, or the
        multi-shard assertions above test nothing."""
        _, (router, segments, _) = twin(4, far_clusters=6, datasets=8)
        sites = {router._site_of_segment(s) for s in segments}
        assert len(sites) > 1


class TestNodeStateParity:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_offline_online_counts_match(self, n_shards):
        (flat, _, authors), (router, _, _) = twin(
            n_shards, far_clusters=4, datasets=6
        )
        nodes = [NodeId(f"node-{a}") for a in authors[:6]]
        for node in nodes:
            assert flat.node_offline(node, at=1.0) == router.node_offline(
                node, at=1.0
            )
        for node in nodes:
            assert flat.node_online(node, at=2.0) == router.node_online(
                node, at=2.0
            )
        for node in nodes:
            assert router.state_transitions(node) == flat.state_transitions(node)

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_repair_identical(self, n_shards):
        (flat, _, authors), (router, _, _) = twin(
            n_shards, far_clusters=4, datasets=6
        )
        for a in authors[:4]:
            flat.node_offline(NodeId(f"node-{a}"), at=1.0)
            router.node_offline(NodeId(f"node-{a}"), at=1.0)
        assert router.under_replicated() == flat.under_replicated()
        flat_created = flat.repair(at=2.0)
        routed_created = router.repair(at=2.0)
        assert [(r.replica_id, r.node_id) for r in flat_created] == [
            (r.replica_id, r.node_id) for r in routed_created
        ]
        assert (
            router.obs.counter("alloc.repair.replicas").value
            == flat.obs.counter("alloc.repair.replicas").value
        )

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_migrate_node_identical(self, n_shards):
        (flat, _, authors), (router, _, _) = twin(
            n_shards, far_clusters=4, datasets=6
        )
        node = NodeId(f"node-{authors[0]}")
        flat_created = flat.migrate_node(node, at=3.0)
        routed_created = router.migrate_node(node, at=3.0)
        assert [(r.replica_id, r.node_id) for r in flat_created] == [
            (r.replica_id, r.node_id) for r in routed_created
        ]
        assert router.catalog.replicas_on_node(node) == []

    def test_scale_hot_identical(self):
        (flat, segments, authors), (router, _, _) = twin(
            2, far_clusters=4, datasets=4
        )
        for seg, req in _request_workload(segments, authors, 40):
            flat.resolve(seg, req)
            router.resolve(seg, req)
        flat_created = flat.scale_hot(5, extra=1, at=4.0)
        routed_created = router.scale_hot(5, extra=1, at=4.0)
        assert [(r.replica_id, r.node_id) for r in flat_created] == [
            (r.replica_id, r.node_id) for r in routed_created
        ]


class TestCampaignEquivalence:
    """Whole chaos campaigns — crash, outage, failover, repair, scrub —
    must report bit-identically with sharding on or off."""

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_reports_bit_identical(self, n_shards):
        from repro.sim.campaign import CampaignConfig, _run_one_seed
        from repro.sim.chaos import ChaosConfig

        chaos = ChaosConfig(horizon_s=600.0)
        base = _run_one_seed(CampaignConfig(chaos=chaos, shards=1), 7)
        sharded = _run_one_seed(
            CampaignConfig(chaos=chaos, shards=n_shards), 7
        )
        assert sharded == base


class TestFallbackAssignment:
    def test_edgeless_graph_routes_via_hash_ring(self):
        g = nx.Graph()
        g.add_nodes_from(["a", "b", "c", "d"])
        router = make_router(CoauthorshipGraph(g), ["a", "b", "c", "d"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        router.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        assert router.syscat.has_segment(seg)
        assert len(router.resolve_candidates(seg, AuthorId("b"))) == 2

    def test_late_joiner_owner_assigned_on_publish(self):
        """A dataset owner the community partition never saw lands on a
        sticky hash-ring site."""
        _, (router, _, _) = twin(2, far_clusters=3)
        ghost = AuthorId("late-joiner")
        assert router.syscat.site_of_author(ghost) is None
        ds = segment_dataset(DatasetId("late-ds"), ghost, 100)
        router.publish_dataset(ds, n_replicas=2)
        site = router.syscat.site_of_author(ghost)
        assert site is not None
        assert router.syscat.site_of_dataset(DatasetId("late-ds")) == site

    def test_failed_publish_leaves_no_metadata(self):
        """System-catalog registration happens only after the shard
        commits — a rolled-back publication leaves no fragments."""
        g = graph_of(pub("p", 2009, "a", "b"))
        router = make_router(g, ["a", "b"], capacity=10)  # too small
        ds = segment_dataset(DatasetId("big"), AuthorId("a"), 1_000)
        with pytest.raises(Exception):
            router.publish_dataset(ds, n_replicas=2)
        assert not router.syscat.has_dataset(DatasetId("big"))
        assert not router.syscat.has_segment(ds.segments[0].segment_id)
        assert DatasetId("big") not in router.catalog


class TestFederatedCatalog:
    def test_iter_replicas_in_creation_order(self):
        _, (router, _, _) = twin(3, far_clusters=5, datasets=6)
        reps = list(router.catalog.iter_replicas())
        assert reps == sorted(reps, key=_creation_key)
        suffixes = [int(str(r.replica_id).rpartition("-")[2]) for r in reps]
        assert suffixes == sorted(suffixes)

    def test_datasets_in_registration_order(self):
        _, (router, _, _) = twin(3, far_clusters=5, datasets=6)
        assert [d.dataset_id for d in router.catalog.datasets()] == [
            DatasetId(f"bench-{i}") for i in range(6)
        ]

    def test_replica_routing_and_lookup(self):
        _, (router, segments, _) = twin(2, far_clusters=4)
        rep = router.catalog.replicas_of_segment(segments[0])[0]
        assert router.catalog.has_replica(rep.replica_id)
        assert router.catalog.replica(rep.replica_id) == rep
        assert not router.catalog.has_replica("r-99999")
        with pytest.raises(CatalogError):
            router.catalog.replica("r-99999")

    def test_quarantine_merges_in_creation_order(self):
        _, (router, segments, _) = twin(2, far_clusters=4, datasets=4)
        picked = []
        for seg in segments:
            picked.append(router.catalog.replicas_of_segment(seg)[0])
        for rep in reversed(picked):
            router.catalog.quarantine(rep.replica_id)
        quarantined = router.catalog.quarantined_replicas()
        assert quarantined == sorted(quarantined, key=_creation_key)
        assert {r.replica_id for r in quarantined} == {
            r.replica_id for r in picked
        }

    def test_unknown_routing_targets_rejected(self):
        _, (router, _, _) = twin(2, far_clusters=3)
        with pytest.raises(CatalogError):
            router.catalog.shard_of_segment(SegmentId("no:seg0"))
        with pytest.raises(CatalogError):
            router.catalog.shard_of_dataset(DatasetId("no"))
        with pytest.raises(CatalogError):
            router.catalog.shard_of_replica("r-404040")


# ----------------------------------------------------------------------
# partition tolerance: degraded resolve, hinted handoff, reconciliation
# ----------------------------------------------------------------------

def node(a):
    """Node id make_router-style registration gives author ``a``."""
    return NodeId(f"node-{a}")


def partition_rig(*, handoff_limit=256, capacities=None):
    """A two-site router plus a NetworkModel reachability oracle.

    Two tight 3-cliques ({a, b, c} and {x, y, z}) joined by one weak
    bridge land on distinct sites at ``n_shards=2``; every author has a
    ``node-<author>`` repository registered both with the router and the
    network. ``capacities`` overrides per-author repository capacity.
    """
    g = graph_of(
        pub("p1", 2009, "a", "b", "c"),
        pub("p2", 2010, "a", "b", "c"),
        pub("q1", 2009, "x", "y", "z"),
        pub("q2", 2010, "x", "y", "z"),
        pub("w", 2011, "c", "x"),
    )
    router = ShardedAllocationRouter(
        g,
        RandomPlacement(),
        n_shards=2,
        seed=0,
        registry=Registry(),
        handoff_limit=handoff_limit,
    )
    caps = capacities or {}
    net = NetworkModel()
    for a in "abcxyz":
        router.register_repository(
            AuthorId(a), StorageRepository(node(a), caps.get(a, 10_000))
        )
        net.add_node(node(a), GeoPoint(0.0, 0.0))
    router.set_reachability_oracle(net)
    # every test below depends on the cliques owning different sites
    assert router.syscat.site_of_author(AuthorId("a")) != router.syscat.site_of_author(
        AuthorId("x")
    )
    return router, net


def split_cliques(net):
    """Partition the rig's network clique-vs-clique."""
    net.partition([[node(a) for a in "abc"], [node(a) for a in "xyz"]])


def degraded_count(router):
    return router.obs.snapshot()["counters"]["alloc.resolve.degraded"]["value"]


class TestDegradedResolve:
    """Resolution keeps serving across a partition, flagged degraded."""

    def _published(self):
        """A dataset owned by x with a replica on every node."""
        router, net = partition_rig()
        ds = segment_dataset(DatasetId("shared"), AuthorId("x"), 100)
        router.publish_dataset(ds, n_replicas=6)
        return router, net, ds.segments[0].segment_id

    def test_whole_network_is_never_degraded(self):
        router, _, seg = self._published()
        res = router.resolve(seg, AuthorId("a"))
        assert not res.degraded
        assert degraded_count(router) == 0

    def test_partitioned_resolve_serves_degraded_from_own_side(self):
        router, net, seg = self._published()
        split_cliques(net)
        res = router.resolve(seg, AuthorId("a"))
        assert res.degraded
        assert res.replica.node_id in {node(c) for c in "abc"}
        assert degraded_count(router) == 1

    def test_same_side_as_owner_stays_authoritative(self):
        router, net, seg = self._published()
        split_cliques(net)
        res = router.resolve(seg, AuthorId("y"))
        assert not res.degraded
        assert degraded_count(router) == 0

    def test_candidates_flagged_and_filtered_to_reachable_side(self):
        router, net, seg = self._published()
        split_cliques(net)
        candidates = router.resolve_candidates(seg, AuthorId("b"))
        assert candidates
        assert all(c.degraded for c in candidates)
        assert {c.replica.node_id for c in candidates} <= {node(c) for c in "abc"}

    def test_resolve_many_mixes_degraded_and_authoritative(self):
        router, net, seg = self._published()
        split_cliques(net)
        out = router.resolve_many([(seg, AuthorId("a")), (seg, AuthorId("x"))])
        assert out[0] is not None and out[0].degraded
        assert out[1] is not None and not out[1].degraded
        assert degraded_count(router) == 1

    def test_no_reachable_replica_raises_and_heals(self):
        """With every replica across the cut the degraded resolve fails —
        and recovers the moment the network heals."""
        router, net = partition_rig(capacities={"a": 10, "b": 10, "c": 10})
        ds = segment_dataset(DatasetId("far"), AuthorId("x"), 100)
        router.publish_dataset(ds, n_replicas=3)  # only x/y/z have room
        seg = ds.segments[0].segment_id
        split_cliques(net)
        with pytest.raises(CatalogError):
            router.resolve(seg, AuthorId("a"))
        net.heal()
        assert not router.resolve(seg, AuthorId("a")).degraded


class TestHintedHandoff:
    """Writes bound for a partitioned-away site queue instead of failing."""

    def _cut_off_coordinator(self, net):
        """Sever node-x (the x-site coordinator) from everyone else, so
        y's own writes to its site degrade."""
        net.partition([[node("x")]])

    def test_publish_queues_under_degraded_owner(self):
        router, net = partition_rig()
        self._cut_off_coordinator(net)
        ds = segment_dataset(DatasetId("queued"), AuthorId("y"), 100)
        assert router.publish_dataset(ds, n_replicas=2) == []
        assert DatasetId("queued") not in router.catalog
        assert not router.syscat.has_dataset(DatasetId("queued"))
        assert [h[0] for h in router.pending_handoff()] == ["publish"]
        snap = router.obs.snapshot()["counters"]
        assert snap["alloc.handoff.queued"]["value"] == 1

    def test_handoff_log_is_bounded(self):
        router, net = partition_rig(handoff_limit=2)
        self._cut_off_coordinator(net)
        for i in range(2):
            ds = segment_dataset(DatasetId(f"q{i}"), AuthorId("y"), 100)
            router.publish_dataset(ds, n_replicas=2)
        overflow = segment_dataset(DatasetId("q2"), AuthorId("y"), 100)
        with pytest.raises(CatalogError, match="full"):
            router.publish_dataset(overflow, n_replicas=2)
        assert len(router.pending_handoff()) == 2
        snap = router.obs.snapshot()["counters"]
        assert snap["alloc.handoff.dropped"]["value"] == 1

    def test_reconcile_replays_queued_publish_after_heal(self):
        router, net = partition_rig()
        self._cut_off_coordinator(net)
        ds = segment_dataset(DatasetId("late"), AuthorId("y"), 100)
        router.publish_dataset(ds, n_replicas=2)
        net.heal()
        report = router.reconcile_after_heal(at=10.0)
        assert report.replayed_publishes == 1
        assert report.remaining == 0
        assert router.pending_handoff() == []
        assert DatasetId("late") in router.catalog
        seg = ds.segments[0].segment_id
        assert len(router.catalog.replicas_of_segment(seg, servable_only=True)) == 2
        snap = router.obs.snapshot()["counters"]
        assert snap["alloc.handoff.replayed"]["value"] == 1
        assert snap["alloc.reconcile.runs"]["value"] == 1

    def test_reconcile_mid_partition_requeues(self):
        """A sweep while the cut is still open must not lose hints."""
        router, net = partition_rig()
        self._cut_off_coordinator(net)
        ds = segment_dataset(DatasetId("stuck"), AuthorId("y"), 100)
        router.publish_dataset(ds, n_replicas=2)
        report = router.reconcile_after_heal(at=5.0)
        assert report.replayed_publishes == 0
        assert report.remaining == 1
        assert DatasetId("stuck") not in router.catalog
        net.heal()
        report = router.reconcile_after_heal(at=10.0)
        assert report.replayed_publishes == 1
        assert DatasetId("stuck") in router.catalog

    def test_repair_hints_queue_and_dedupe_across_the_cut(self):
        """Repair never copies across a severed link: segments owned by an
        unreachable site queue one hint each, replayed by reconcile."""
        router, net = partition_rig()
        away = next(
            a for a in "ax" if router.syscat.site_of_author(AuthorId(a)) != 0
        )
        clique = "abc" if away == "a" else "xyz"
        ds = segment_dataset(DatasetId("hurt"), AuthorId(away), 100)
        router.publish_dataset(ds, n_replicas=3)
        seg = ds.segments[0].segment_id
        victim = sorted(
            router.catalog.nodes_hosting(seg), key=str
        )[0]
        router.node_offline(victim, at=1.0)
        assert router.under_replicated()
        net.partition(
            [
                [node(a) for a in "abc" if a not in clique]
                + [node(a) for a in "xyz" if a not in clique],
                [node(a) for a in clique],
            ]
        )
        assert router.repair(at=2.0) == []
        assert [h for h in router.pending_handoff()] == [("repair", seg)]
        router.repair(at=3.0)  # deduplicated: still one hint
        assert len(router.pending_handoff()) == 1
        net.heal()
        report = router.reconcile_after_heal(at=4.0)
        assert report.replayed_repairs == 1
        assert report.repaired >= 1
        assert router.under_replicated() == []
        assert router.pending_handoff() == []


class TestInjectorRouterWiring:
    """FailureInjector.attach_server drives a ShardedAllocationRouter
    exactly like a single server (regression for the widened surface)."""

    def _wired(self):
        router, net = partition_rig()
        engine = SimulationEngine(registry=router.obs)
        injector = FailureInjector(engine, [node(a) for a in "abcxyz"], seed=0)
        injector.attach_server(router)
        ds = segment_dataset(DatasetId("wired"), AuthorId("x"), 100)
        router.publish_dataset(ds, n_replicas=3)
        seg = ds.segments[0].segment_id
        return router, net, engine, injector, seg

    def test_crash_migrates_replicas_through_router(self):
        router, _, engine, injector, seg = self._wired()
        victim = sorted(router.catalog.nodes_hosting(seg), key=str)[0]
        injector.crash(victim, at=1.0)
        engine.run()
        assert not router.is_online(victim)
        live = {
            r.node_id
            for r in router.catalog.replicas_of_segment(seg, servable_only=True)
        }
        assert victim not in live
        assert len(live) == 3  # budget restored elsewhere

    def test_outage_toggles_offline_online_through_router(self):
        router, _, engine, injector, seg = self._wired()
        victim = sorted(router.catalog.nodes_hosting(seg), key=str)[0]
        injector.outage(victim, start=1.0, duration=5.0)
        engine.run(until=2.0)
        assert not router.is_online(victim)
        engine.run()
        assert router.is_online(victim)

    def test_heal_reconciles_queued_publish_through_injector(self):
        """An injector-scheduled partition drains the handoff log on heal
        without anyone calling reconcile_after_heal by hand."""
        router, net, engine, injector, _ = self._wired()
        injector.network_partition(
            net, [[node("x")], [node(a) for a in "abcyz"]], start=1.0, duration=5.0
        )

        def publish_mid_partition(e):
            ds = segment_dataset(DatasetId("mid"), AuthorId("y"), 100)
            assert router.publish_dataset(ds, n_replicas=2, at=e.now) == []

        engine.schedule(2.0, publish_mid_partition, label="mid-publish")
        engine.run()
        assert not net.partitioned
        assert DatasetId("mid") in router.catalog
        assert router.pending_handoff() == []
        snap = router.obs.snapshot()["counters"]
        assert snap["alloc.handoff.replayed"]["value"] == 1
