"""Differential tests for the sharded allocation tier.

The equivalence contract of :class:`~repro.cdn.sharding.ShardedAllocationRouter`:
with one shard, every operation is bit-identical to an unsharded
:class:`~repro.cdn.allocation.AllocationServer`; with N shards, resolves,
repairs, migrations, and whole chaos campaigns still produce the exact
same replica ids, rankings, and reports — the shared fabric, shared id
allocator, shared RNG, and globally ordered repair queue make the
federation indistinguishable from one server for the same operation
sequence.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import CatalogError, ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId, SegmentId
from repro.obs import Registry
from repro.perf import (
    _request_workload,
    build_resolve_deployment,
    build_sharded_deployment,
)
from repro.social.graph import CoauthorshipGraph
from repro.cdn.allocation import resolve_candidates_reference
from repro.cdn.content import segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.sharding import ShardedAllocationRouter, _creation_key
from repro.cdn.storage import StorageRepository

from ..conftest import pub
from .test_allocation_bugfixes import graph_of


def ranking(candidates):
    """Comparable projection of a candidate list."""
    return [
        (c.replica.replica_id, c.replica.node_id, c.social_hops)
        for c in candidates
    ]


def twin(n_shards, **kwargs):
    """An unsharded deployment and its sharded twin (same seeds/ops)."""
    kwargs.setdefault("spread_owners", True)
    flat = build_resolve_deployment(registry=Registry(), **kwargs)
    sharded = build_sharded_deployment(
        registry=Registry(), n_shards=n_shards, **kwargs
    )
    return flat, sharded


def make_router(graph, authors, *, n_shards=2, capacity=10_000, seed=0):
    """A router over ``graph`` with one registered repo per author."""
    router = ShardedAllocationRouter(
        graph, RandomPlacement(), n_shards=n_shards, seed=seed, registry=Registry()
    )
    for a in authors:
        router.register_repository(
            AuthorId(a), StorageRepository(NodeId(f"node-{a}"), capacity)
        )
    return router


class TestConstruction:
    def test_bad_shard_count_rejected(self):
        g = graph_of(pub("p", 2009, "a", "b"))
        with pytest.raises(ConfigurationError):
            ShardedAllocationRouter(g, RandomPlacement(), n_shards=0)

    def test_counters_shared_across_shards(self):
        """All shards resolve instruments by name from one registry —
        the same objects an unsharded server would own."""
        _, (router, _, _) = twin(2, far_clusters=4)
        for shard in router.shards[1:]:
            assert shard.obs is router.shards[0].obs
            assert (
                shard._m_resolve_total is router.shards[0]._m_resolve_total
            )


class TestSingleShardEquivalence:
    """n_shards=1: the router must be bit-identical to today's server."""

    def test_replica_id_sequence_identical(self):
        (flat, _, _), (router, _, _) = twin(1, far_clusters=4)
        flat_ids = [r.replica_id for r in flat.catalog.iter_replicas()]
        routed_ids = [r.replica_id for r in router.catalog.iter_replicas()]
        assert flat_ids == routed_ids

    def test_resolution_identical_and_matches_reference(self):
        (flat, segments, authors), (router, _, _) = twin(1, far_clusters=4)
        for seg, req in _request_workload(segments, authors, 150):
            routed = router.resolve_candidates(seg, req)
            assert ranking(routed) == ranking(flat.resolve_candidates(seg, req))
            # the pre-index reference runs unmodified against the router
            assert ranking(routed) == ranking(
                resolve_candidates_reference(router, seg, req)
            )


class TestMultiShardEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_resolution_identical(self, n_shards):
        (flat, segments, authors), (router, _, _) = twin(
            n_shards, far_clusters=6, datasets=8
        )
        assert [r.replica_id for r in flat.catalog.iter_replicas()] == [
            r.replica_id for r in router.catalog.iter_replicas()
        ]
        for seg, req in _request_workload(segments, authors, 200):
            assert ranking(router.resolve_candidates(seg, req)) == ranking(
                flat.resolve_candidates(seg, req)
            )

    def test_resolve_many_matches_sequential_order(self):
        (flat, segments, authors), (router, _, _) = twin(
            3, far_clusters=6, datasets=6
        )
        workload = _request_workload(segments, authors, 90)
        flat_out = [flat.resolve(seg, req) for seg, req in workload]
        routed_out = router.resolve_many(workload)
        assert [(r.replica.replica_id, r.social_hops) for r in flat_out] == [
            (r.replica.replica_id, r.social_hops) for r in routed_out
        ]

    def test_resolve_many_rejects_unknown_segment_up_front(self):
        _, (router, segments, authors) = twin(2, far_clusters=4)
        with pytest.raises(CatalogError):
            router.resolve_many(
                [(segments[0], authors[0]), (SegmentId("no:seg0"), authors[0])]
            )

    def test_segments_actually_spread_across_shards(self):
        """The bench twin must exercise more than one site, or the
        multi-shard assertions above test nothing."""
        _, (router, segments, _) = twin(4, far_clusters=6, datasets=8)
        sites = {router._site_of_segment(s) for s in segments}
        assert len(sites) > 1


class TestNodeStateParity:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_offline_online_counts_match(self, n_shards):
        (flat, _, authors), (router, _, _) = twin(
            n_shards, far_clusters=4, datasets=6
        )
        nodes = [NodeId(f"node-{a}") for a in authors[:6]]
        for node in nodes:
            assert flat.node_offline(node, at=1.0) == router.node_offline(
                node, at=1.0
            )
        for node in nodes:
            assert flat.node_online(node, at=2.0) == router.node_online(
                node, at=2.0
            )
        for node in nodes:
            assert router.state_transitions(node) == flat.state_transitions(node)

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_repair_identical(self, n_shards):
        (flat, _, authors), (router, _, _) = twin(
            n_shards, far_clusters=4, datasets=6
        )
        for a in authors[:4]:
            flat.node_offline(NodeId(f"node-{a}"), at=1.0)
            router.node_offline(NodeId(f"node-{a}"), at=1.0)
        assert router.under_replicated() == flat.under_replicated()
        flat_created = flat.repair(at=2.0)
        routed_created = router.repair(at=2.0)
        assert [(r.replica_id, r.node_id) for r in flat_created] == [
            (r.replica_id, r.node_id) for r in routed_created
        ]
        assert (
            router.obs.counter("alloc.repair.replicas").value
            == flat.obs.counter("alloc.repair.replicas").value
        )

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_migrate_node_identical(self, n_shards):
        (flat, _, authors), (router, _, _) = twin(
            n_shards, far_clusters=4, datasets=6
        )
        node = NodeId(f"node-{authors[0]}")
        flat_created = flat.migrate_node(node, at=3.0)
        routed_created = router.migrate_node(node, at=3.0)
        assert [(r.replica_id, r.node_id) for r in flat_created] == [
            (r.replica_id, r.node_id) for r in routed_created
        ]
        assert router.catalog.replicas_on_node(node) == []

    def test_scale_hot_identical(self):
        (flat, segments, authors), (router, _, _) = twin(
            2, far_clusters=4, datasets=4
        )
        for seg, req in _request_workload(segments, authors, 40):
            flat.resolve(seg, req)
            router.resolve(seg, req)
        flat_created = flat.scale_hot(5, extra=1, at=4.0)
        routed_created = router.scale_hot(5, extra=1, at=4.0)
        assert [(r.replica_id, r.node_id) for r in flat_created] == [
            (r.replica_id, r.node_id) for r in routed_created
        ]


class TestCampaignEquivalence:
    """Whole chaos campaigns — crash, outage, failover, repair, scrub —
    must report bit-identically with sharding on or off."""

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_reports_bit_identical(self, n_shards):
        from repro.sim.campaign import CampaignConfig, _run_one_seed
        from repro.sim.chaos import ChaosConfig

        chaos = ChaosConfig(horizon_s=600.0)
        base = _run_one_seed(CampaignConfig(chaos=chaos, shards=1), 7)
        sharded = _run_one_seed(
            CampaignConfig(chaos=chaos, shards=n_shards), 7
        )
        assert sharded == base


class TestFallbackAssignment:
    def test_edgeless_graph_routes_via_hash_ring(self):
        g = nx.Graph()
        g.add_nodes_from(["a", "b", "c", "d"])
        router = make_router(CoauthorshipGraph(g), ["a", "b", "c", "d"])
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        router.publish_dataset(ds, n_replicas=2)
        seg = ds.segments[0].segment_id
        assert router.syscat.has_segment(seg)
        assert len(router.resolve_candidates(seg, AuthorId("b"))) == 2

    def test_late_joiner_owner_assigned_on_publish(self):
        """A dataset owner the community partition never saw lands on a
        sticky hash-ring site."""
        _, (router, _, _) = twin(2, far_clusters=3)
        ghost = AuthorId("late-joiner")
        assert router.syscat.site_of_author(ghost) is None
        ds = segment_dataset(DatasetId("late-ds"), ghost, 100)
        router.publish_dataset(ds, n_replicas=2)
        site = router.syscat.site_of_author(ghost)
        assert site is not None
        assert router.syscat.site_of_dataset(DatasetId("late-ds")) == site

    def test_failed_publish_leaves_no_metadata(self):
        """System-catalog registration happens only after the shard
        commits — a rolled-back publication leaves no fragments."""
        g = graph_of(pub("p", 2009, "a", "b"))
        router = make_router(g, ["a", "b"], capacity=10)  # too small
        ds = segment_dataset(DatasetId("big"), AuthorId("a"), 1_000)
        with pytest.raises(Exception):
            router.publish_dataset(ds, n_replicas=2)
        assert not router.syscat.has_dataset(DatasetId("big"))
        assert not router.syscat.has_segment(ds.segments[0].segment_id)
        assert DatasetId("big") not in router.catalog


class TestFederatedCatalog:
    def test_iter_replicas_in_creation_order(self):
        _, (router, _, _) = twin(3, far_clusters=5, datasets=6)
        reps = list(router.catalog.iter_replicas())
        assert reps == sorted(reps, key=_creation_key)
        suffixes = [int(str(r.replica_id).rpartition("-")[2]) for r in reps]
        assert suffixes == sorted(suffixes)

    def test_datasets_in_registration_order(self):
        _, (router, _, _) = twin(3, far_clusters=5, datasets=6)
        assert [d.dataset_id for d in router.catalog.datasets()] == [
            DatasetId(f"bench-{i}") for i in range(6)
        ]

    def test_replica_routing_and_lookup(self):
        _, (router, segments, _) = twin(2, far_clusters=4)
        rep = router.catalog.replicas_of_segment(segments[0])[0]
        assert router.catalog.has_replica(rep.replica_id)
        assert router.catalog.replica(rep.replica_id) == rep
        assert not router.catalog.has_replica("r-99999")
        with pytest.raises(CatalogError):
            router.catalog.replica("r-99999")

    def test_quarantine_merges_in_creation_order(self):
        _, (router, segments, _) = twin(2, far_clusters=4, datasets=4)
        picked = []
        for seg in segments:
            picked.append(router.catalog.replicas_of_segment(seg)[0])
        for rep in reversed(picked):
            router.catalog.quarantine(rep.replica_id)
        quarantined = router.catalog.quarantined_replicas()
        assert quarantined == sorted(quarantined, key=_creation_key)
        assert {r.replica_id for r in quarantined} == {
            r.replica_id for r in picked
        }

    def test_unknown_routing_targets_rejected(self):
        _, (router, _, _) = twin(2, far_clusters=3)
        with pytest.raises(CatalogError):
            router.catalog.shard_of_segment(SegmentId("no:seg0"))
        with pytest.raises(CatalogError):
            router.catalog.shard_of_dataset(DatasetId("no"))
        with pytest.raises(CatalogError):
            router.catalog.shard_of_replica("r-404040")
