"""Unit tests for repro.cdn.placement.geo_social."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import NodeId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.placement import GeoSocialPlacement, NodeDegreePlacement
from repro.sim.network import GeoPoint, NetworkModel

from ..conftest import pub


@pytest.fixture
def colocated_hubs():
    """Two equal-degree hubs in one city, one smaller hub far away."""
    pubs = [pub(f"a{i}", 2009, "hub-east-1", f"e1-{i}") for i in range(5)]
    pubs += [pub(f"b{i}", 2009, "hub-east-2", f"e2-{i}") for i in range(5)]
    pubs += [pub(f"c{i}", 2009, "hub-west", f"w-{i}") for i in range(4)]
    pubs.append(pub("x", 2009, "hub-east-1", "hub-east-2"))
    graph = build_coauthorship_graph(Corpus(pubs))
    net = NetworkModel()
    for a in graph.nodes():
        if str(a).startswith(("hub-east", "e1", "e2")):
            point = GeoPoint(40.0, -74.0)  # east coast
        else:
            point = GeoPoint(37.0, -122.0)  # west coast
        net.add_node(NodeId(str(a)), point)
    return graph, net


class TestGeoSocial:
    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            GeoSocialPlacement(alpha=1.5)

    def test_without_network_acts_like_degree(self, colocated_hubs):
        graph, _ = colocated_hubs
        geo = GeoSocialPlacement(network=None, alpha=0.6)
        out = geo.select(graph, 2, rng=0)
        deg = NodeDegreePlacement().select(graph, 2, rng=0)
        assert set(out) == set(deg)

    def test_disperses_across_geography(self, colocated_hubs):
        graph, net = colocated_hubs
        # plain degree picks both east-coast hubs (degree 6 each)
        deg = NodeDegreePlacement().select(graph, 2, rng=0)
        assert set(deg) == {"hub-east-1", "hub-east-2"}
        # geo-social picks one east hub then jumps west
        geo = GeoSocialPlacement(network=net, alpha=0.4)
        out = geo.select(graph, 2, rng=0)
        assert "hub-west" in out

    def test_alpha_one_is_pure_social(self, colocated_hubs):
        graph, net = colocated_hubs
        out = GeoSocialPlacement(network=net, alpha=1.0).select(graph, 2, rng=0)
        assert set(out) == {"hub-east-1", "hub-east-2"}

    def test_returns_requested_count(self, colocated_hubs):
        graph, net = colocated_hubs
        out = GeoSocialPlacement(network=net).select(graph, 5, rng=0)
        assert len(out) == 5
        assert len(set(out)) == 5

    def test_deterministic_given_rng(self, colocated_hubs):
        graph, net = colocated_hubs
        algo = GeoSocialPlacement(network=net)
        assert algo.select(graph, 3, rng=4) == algo.select(graph, 3, rng=4)

    def test_registered(self):
        from repro.cdn.placement import get_placement

        assert get_placement("geo-social").name == "geo-social"

    def test_authors_missing_from_network_tolerated(self, colocated_hubs):
        graph, _ = colocated_hubs
        partial = NetworkModel()
        partial.add_node(NodeId("hub-west"), GeoPoint(37.0, -122.0))
        out = GeoSocialPlacement(network=partial, alpha=0.5).select(graph, 3, rng=0)
        assert len(out) == 3
