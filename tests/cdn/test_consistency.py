"""Unit tests for repro.cdn.consistency (update propagation)."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError, ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.consistency import ReplicaVersionTracker, UpdatePropagator
from repro.cdn.content import segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.storage import StorageRepository
from repro.cdn.transfer import TransferClient
from repro.sim.engine import SimulationEngine
from repro.sim.network import GeoPoint, NetworkModel

from ..conftest import pub


@pytest.fixture
def rig():
    graph = build_coauthorship_graph(
        Corpus([pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"), pub("p3", 2009, "c", "d")])
    )
    server = AllocationServer(graph, RandomPlacement(), seed=0)
    net = NetworkModel(default_bandwidth_bps=8e6)
    for author in "abcd":
        node = NodeId(f"node-{author}")
        net.add_node(node, GeoPoint(0.0, float(ord(author) - 97)))
        server.register_repository(AuthorId(author), StorageRepository(node, 10_000))
    ds = segment_dataset(DatasetId("d"), AuthorId("a"), 1000)
    server.publish_dataset(ds, n_replicas=3)
    engine = SimulationEngine()
    transfer = TransferClient(net, seed=0)
    prop = UpdatePropagator(server, transfer, engine, anti_entropy_interval_s=3600.0)
    seg = ds.segments[0].segment_id
    return server, engine, prop, seg


class TestTracker:
    def test_initial_versions_zero(self):
        t = ReplicaVersionTracker()
        assert t.latest_version("s") == 0
        assert t.node_version("s", "n") == 0
        assert not t.is_stale("s", "n")

    def test_commit_bumps_version(self):
        t = ReplicaVersionTracker()
        r1 = t.commit_write("s", NodeId("n1"), at=1.0)
        r2 = t.commit_write("s", NodeId("n1"), at=2.0)
        assert (r1.version, r2.version) == (1, 2)
        assert t.latest_version("s") == 2
        assert len(t.history) == 2

    def test_apply_update_last_writer_wins(self):
        t = ReplicaVersionTracker()
        t.commit_write("s", NodeId("n1"))
        t.commit_write("s", NodeId("n1"))
        assert t.apply_update("s", NodeId("n2"), 2)
        assert not t.apply_update("s", NodeId("n2"), 1)  # stale delivery
        assert t.node_version("s", NodeId("n2")) == 2

    def test_stale_nodes(self):
        t = ReplicaVersionTracker()
        t.commit_write("s", NodeId("n1"))
        assert t.stale_nodes("s", {NodeId("n1"), NodeId("n2")}) == {NodeId("n2")}


class TestPropagation:
    def test_write_requires_holding_replica(self, rig):
        server, engine, prop, seg = rig
        non_holder = next(
            NodeId(f"node-{a}")
            for a in "abcd"
            if NodeId(f"node-{a}") not in server.catalog.nodes_hosting(seg)
        )
        with pytest.raises(CatalogError):
            prop.write(seg, non_holder)

    def test_online_peers_converge(self, rig):
        server, engine, prop, seg = rig
        origin = sorted(server.catalog.nodes_hosting(seg))[0]
        prop.write(seg, origin)
        assert not prop.is_consistent(seg)  # propagation in flight
        engine.run(until=100.0)
        assert prop.is_consistent(seg)
        assert prop.propagated == 2  # two peers updated

    def test_offline_peer_caught_up_by_anti_entropy(self, rig):
        server, engine, prop, seg = rig
        holders = sorted(server.catalog.nodes_hosting(seg))
        origin, offline_peer = holders[0], holders[1]
        server.node_offline(offline_peer)
        prop.write(seg, origin)
        engine.run(until=100.0)
        # stale replica is not servable while offline; bring it back
        server.node_online(offline_peer)
        assert prop.staleness(seg) > 0.0
        engine.run(until=7200.0)  # anti-entropy sweep at 3600
        assert prop.is_consistent(seg)
        assert prop.anti_entropy_syncs >= 1

    def test_staleness_fraction(self, rig):
        server, engine, prop, seg = rig
        origin = sorted(server.catalog.nodes_hosting(seg))[0]
        prop.write(seg, origin)
        # before propagation arrives: 2 of 3 replicas stale
        assert prop.staleness(seg) == pytest.approx(2 / 3)

    def test_consecutive_writes_converge_to_latest(self, rig):
        server, engine, prop, seg = rig
        holders = sorted(server.catalog.nodes_hosting(seg))
        prop.write(seg, holders[0])
        engine.run(until=50.0)
        prop.write(seg, holders[1])
        engine.run(until=7200.0)
        assert prop.is_consistent(seg)
        assert prop.tracker.latest_version(seg) == 2
        for node in holders:
            assert prop.tracker.node_version(seg, node) == 2

    def test_delivery_skipped_when_node_down_midflight(self, rig):
        server, engine, prop, seg = rig
        holders = sorted(server.catalog.nodes_hosting(seg))
        origin, victim = holders[0], holders[1]
        prop.write(seg, origin)
        server.node_offline(victim)  # goes down before delivery fires
        engine.run(until=100.0)
        assert prop.tracker.is_stale(seg, victim)

    def test_invalid_anti_entropy_interval(self, rig):
        server, engine, prop, _ = rig
        with pytest.raises(ConfigurationError):
            UpdatePropagator(server, prop.transfer, engine, anti_entropy_interval_s=0)

    def test_propagator_without_anti_entropy(self, rig):
        server, engine, _, seg = rig
        prop2 = UpdatePropagator(
            server, TransferClient(prop_net(server), seed=1), engine,
            anti_entropy_interval_s=None,
        )
        origin = sorted(server.catalog.nodes_hosting(seg))[0]
        prop2.write(seg, origin)
        engine.run(until=10_000.0)
        assert prop2.is_consistent(seg)


def prop_net(server):
    """Fresh network covering the rig's nodes (for the no-anti-entropy case)."""
    net = NetworkModel(default_bandwidth_bps=8e6)
    for a in "abcd":
        net.add_node(NodeId(f"node-{a}"), GeoPoint(0.0, float(ord(a) - 97)))
    return net
