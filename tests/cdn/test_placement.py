"""Unit tests for repro.cdn.placement (all eight algorithms)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.ids import AuthorId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.placement import (
    BetweennessPlacement,
    ClusteringCoefficientPlacement,
    CommunityNodeDegreePlacement,
    DominatingSetPlacement,
    GreedyCoveragePlacement,
    NodeDegreePlacement,
    PageRankPlacement,
    RandomPlacement,
    all_placements,
    get_placement,
    paper_placements,
)
from repro.cdn.placement.base import placement_names, ranked_by_score, register_placement

from ..conftest import pub


@pytest.fixture
def star_graph():
    """hub connected to 6 leaves, plus a triangle x-y-z elsewhere."""
    pubs = [pub(f"p{i}", 2009, "hub", f"leaf{i}") for i in range(6)]
    pubs.append(pub("t", 2009, "x", "y", "z"))
    return build_coauthorship_graph(Corpus(pubs))


@pytest.fixture
def two_hubs():
    """Two stars whose hubs are connected: hub1(5 leaves) - hub2(4 leaves)."""
    pubs = [pub(f"a{i}", 2009, "hub1", f"l1-{i}") for i in range(5)]
    pubs += [pub(f"b{i}", 2009, "hub2", f"l2-{i}") for i in range(4)]
    pubs.append(pub("bridge", 2009, "hub1", "hub2"))
    return build_coauthorship_graph(Corpus(pubs))


ALL_ALGOS = [
    RandomPlacement(),
    NodeDegreePlacement(),
    CommunityNodeDegreePlacement(),
    ClusteringCoefficientPlacement(),
    BetweennessPlacement(),
    PageRankPlacement(),
    GreedyCoveragePlacement(),
    DominatingSetPlacement(),
]


class TestCommonContract:
    @pytest.mark.parametrize("algo", ALL_ALGOS, ids=lambda a: a.name)
    def test_returns_requested_count(self, algo, star_graph):
        out = algo.select(star_graph, 3, rng=0)
        assert len(out) == 3
        assert len(set(out)) == 3
        assert all(a in star_graph for a in out)

    @pytest.mark.parametrize("algo", ALL_ALGOS, ids=lambda a: a.name)
    def test_caps_at_graph_size(self, algo, star_graph):
        out = algo.select(star_graph, 100, rng=0)
        assert len(out) == star_graph.n_nodes

    @pytest.mark.parametrize("algo", ALL_ALGOS, ids=lambda a: a.name)
    def test_deterministic_given_rng(self, algo, star_graph):
        assert algo.select(star_graph, 4, rng=5) == algo.select(star_graph, 4, rng=5)

    @pytest.mark.parametrize("algo", ALL_ALGOS, ids=lambda a: a.name)
    def test_zero_replicas_rejected(self, algo, star_graph):
        with pytest.raises(PlacementError):
            algo.select(star_graph, 0)

    @pytest.mark.parametrize("algo", ALL_ALGOS, ids=lambda a: a.name)
    def test_empty_graph_rejected(self, algo):
        import networkx as nx
        from repro.social.graph import CoauthorshipGraph

        with pytest.raises(PlacementError):
            algo.select(CoauthorshipGraph(nx.Graph()), 1)


class TestRandom:
    def test_varies_across_rngs(self, star_graph):
        outcomes = {tuple(sorted(RandomPlacement().select(star_graph, 3, rng=i))) for i in range(20)}
        assert len(outcomes) > 1


class TestNodeDegree:
    def test_picks_hub_first(self, star_graph):
        out = NodeDegreePlacement().select(star_graph, 1, rng=0)
        assert out == ["hub"]

    def test_top_two_are_hub_then_triangle(self, star_graph):
        out = NodeDegreePlacement().select(star_graph, 4, rng=0)
        assert out[0] == "hub"
        assert set(out[1:]) <= {"x", "y", "z"}


class TestCommunityNodeDegree:
    def test_excludes_neighbors_of_picks(self, two_hubs):
        out = CommunityNodeDegreePlacement().select(two_hubs, 2, rng=0)
        # hub1 first; hub2 is its neighbor -> excluded; second pick is a leaf
        assert out[0] == "hub1"
        assert out[1] != "hub2"

    def test_plain_degree_would_take_both_hubs(self, two_hubs):
        out = NodeDegreePlacement().select(two_hubs, 2, rng=0)
        assert set(out) == {"hub1", "hub2"}

    def test_relaxes_when_exhausted(self, star_graph):
        # picking hub excludes all leaves; further picks must still happen
        out = CommunityNodeDegreePlacement().select(star_graph, 9, rng=0)
        assert len(out) == 9

    def test_radius_validation(self):
        with pytest.raises(ConfigurationError):
            CommunityNodeDegreePlacement(radius=0)

    def test_radius_two_excludes_wider(self, two_hubs):
        out = CommunityNodeDegreePlacement(radius=2).select(two_hubs, 2, rng=0)
        # radius 2 around hub1 covers everything except none -> relaxation kicks in
        assert out[0] == "hub1"
        assert len(out) == 2


class TestClusteringCoefficient:
    def test_prefers_triangle_members(self, star_graph):
        out = ClusteringCoefficientPlacement().select(star_graph, 3, rng=0)
        assert set(out) == {"x", "y", "z"}


class TestBetweenness:
    def test_bridge_node_first(self, two_hubs):
        out = BetweennessPlacement().select(two_hubs, 2, rng=0)
        assert set(out) == {"hub1", "hub2"}


class TestPageRank:
    def test_hub_ranks_first(self, star_graph):
        out = PageRankPlacement().select(star_graph, 1, rng=0)
        assert out == ["hub"]


class TestGreedyCoverage:
    def test_two_picks_cover_both_stars(self, two_hubs):
        out = GreedyCoveragePlacement().select(two_hubs, 2, rng=0)
        assert set(out) == {"hub1", "hub2"}

    def test_first_pick_max_neighborhood(self, star_graph):
        out = GreedyCoveragePlacement().select(star_graph, 1, rng=0)
        assert out == ["hub"]


class TestDominatingSet:
    def test_availability_cost_steers_choice(self, two_hubs):
        # make hub1 very unavailable: hub2 becomes the better first pick
        avail = {AuthorId("hub1"): 0.05}
        out = DominatingSetPlacement(availability=avail).select(two_hubs, 1, rng=0)
        assert out == ["hub2"]

    def test_invalid_availability_rejected(self):
        with pytest.raises(ConfigurationError):
            DominatingSetPlacement(availability={AuthorId("a"): 0.0})

    def test_unweighted_covers_graph(self, two_hubs):
        out = DominatingSetPlacement().select(two_hubs, 2, rng=0)
        assert set(out) == {"hub1", "hub2"}


class TestRegistry:
    def test_paper_placements_order(self):
        names = [p.name for p in paper_placements()]
        assert names == [
            "random",
            "node-degree",
            "community-node-degree",
            "clustering-coefficient",
        ]

    def test_all_placements_include_extensions(self):
        names = {p.name for p in all_placements()}
        assert {"betweenness", "pagerank", "greedy-coverage", "dominating-set"} <= names

    def test_get_placement_unknown(self):
        with pytest.raises(ConfigurationError):
            get_placement("magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_placement("random", RandomPlacement)

    def test_names_sorted(self):
        names = placement_names()
        assert names == sorted(names)


class TestRankedByScore:
    def test_ties_resolved_randomly(self, star_graph):
        import numpy as np

        scores = {a: 1.0 for a in star_graph.nodes()}
        first = {
            ranked_by_score(star_graph, scores, 1, np.random.default_rng(i))[0]
            for i in range(30)
        }
        assert len(first) > 1


class TestWeightedDegree:
    def test_repeat_collaborator_beats_one_shot_hub(self):
        from repro.cdn.placement import WeightedDegreePlacement

        # 'veteran' shares 4 pubs with each of 2 colleagues (weight 8);
        # 'hub' is on one 6-author paper (degree 5, weight 5)
        pubs = [pub(f"v{i}", 2009 + i % 3, "veteran", "c1") for i in range(4)]
        pubs += [pub(f"w{i}", 2009 + i % 3, "veteran", "c2") for i in range(4)]
        pubs.append(pub("big", 2009, "hub", "h1", "h2", "h3", "h4", "h5"))
        graph = build_coauthorship_graph(Corpus(pubs))
        weighted = WeightedDegreePlacement().select(graph, 1, rng=0)
        plain = NodeDegreePlacement().select(graph, 1, rng=0)
        assert weighted == ["veteran"]
        # every member of the 6-author paper has degree 5 > veteran's 2
        assert plain[0] in {"hub", "h1", "h2", "h3", "h4", "h5"}

    def test_registered(self):
        assert get_placement("weighted-degree").name == "weighted-degree"
