"""Unit tests for repro.cdn.client (the per-researcher CDN client)."""

from __future__ import annotations

import pytest

from repro.ids import AuthorId, DatasetId, NodeId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.client import CDNClient
from repro.cdn.content import segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.storage import StorageRepository
from repro.cdn.transfer import TransferClient
from repro.sim.network import GeoPoint, NetworkModel

from ..conftest import pub


@pytest.fixture
def setup():
    graph = build_coauthorship_graph(
        Corpus([pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c")])
    )
    server = AllocationServer(graph, RandomPlacement(), seed=0)
    net = NetworkModel()
    repos = {}
    for author in ("a", "b", "c"):
        node = NodeId(f"node-{author}")
        net.add_node(node, GeoPoint(0.0, float(ord(author))))
        repo = StorageRepository(node, 10_000, replica_quota=0.7)
        server.register_repository(AuthorId(author), repo)
        repos[author] = repo
    transfer = TransferClient(net, seed=0)
    clients = {
        author: CDNClient(AuthorId(author), repos[author], server, transfer)
        for author in repos
    }
    return graph, server, clients


class TestAccessPaths:
    def test_local_replica_partition_hit(self, setup):
        _, server, clients = setup
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=3)  # everyone hosts it
        out = clients["a"].access_segment(ds.segments[0].segment_id)
        assert out.source == "replica-partition"
        assert out.ok and out.duration_s == 0.0
        assert clients["a"].stats.local_hits == 1

    def test_remote_fetch_then_cache_hit(self, setup):
        _, server, clients = setup
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        # place only on a's node so c must fetch
        server_repo = server.repository(NodeId("node-a"))
        seg = ds.segments[0]
        server.catalog.register_dataset(ds)
        server._dataset_budget[ds.dataset_id] = 1
        server_repo.store_replica(seg.segment_id, seg.size_bytes)
        from repro.cdn.content import ReplicaState

        server.catalog.create_replica(
            seg.segment_id, NodeId("node-a"), state=ReplicaState.ACTIVE
        )
        first = clients["c"].access_segment(seg.segment_id)
        assert first.source == "remote" and first.ok
        assert first.social_hops == 2
        second = clients["c"].access_segment(seg.segment_id)
        assert second.source == "user-cache"
        s = clients["c"].stats
        assert s.remote_fetches == 1 and s.cache_hits == 1
        assert s.bytes_fetched == 100
        assert s.hop_histogram == {2: 1}

    def test_missing_replica_fails_cleanly(self, setup):
        _, server, clients = setup
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.catalog.register_dataset(ds)
        out = clients["b"].access_segment(ds.segments[0].segment_id)
        assert not out.ok
        assert clients["b"].stats.failed == 1

    def test_access_dataset_covers_all_segments(self, setup):
        _, server, clients = setup
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 300, n_segments=3)
        server.publish_dataset(ds, n_replicas=1)
        outcomes = clients["b"].access_dataset(ds.dataset_id)
        assert len(outcomes) == 3
        assert all(o.ok for o in outcomes)


class TestCacheEviction:
    def test_eviction_when_user_space_full(self, setup):
        _, server, clients = setup
        # user partition of each repo: 3000 bytes
        d1 = segment_dataset(DatasetId("d1"), AuthorId("a"), 3000)
        d2 = segment_dataset(DatasetId("d2"), AuthorId("a"), 3000)
        server.publish_dataset(d1, n_replicas=1)
        server.publish_dataset(d2, n_replicas=1)
        client = next(
            c
            for c in clients.values()
            if not c.repository.hosts_segment(d1.segments[0].segment_id)
            and not c.repository.hosts_segment(d2.segments[0].segment_id)
        )
        client.access_segment(d1.segments[0].segment_id)
        client.access_segment(d2.segments[0].segment_id)
        # first cache entry evicted to fit the second
        assert not client.repository.has_user_file(f"cache:{d1.segments[0].segment_id}")
        assert client.repository.has_user_file(f"cache:{d2.segments[0].segment_id}")

    def test_oversized_segment_streams_without_caching(self, setup):
        _, server, clients = setup
        big = segment_dataset(DatasetId("big"), AuthorId("a"), 4000)
        server.publish_dataset(big, n_replicas=1)
        client = next(
            c
            for c in clients.values()
            if not c.repository.hosts_segment(big.segments[0].segment_id)
        )
        out = client.access_segment(big.segments[0].segment_id)
        assert out.ok
        assert not client.repository.has_user_file(f"cache:{big.segments[0].segment_id}")

    def test_user_files_never_evicted(self, setup):
        _, server, clients = setup
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 3000)
        server.publish_dataset(ds, n_replicas=1)
        client = next(
            c
            for c in clients.values()
            if not c.repository.hosts_segment(ds.segments[0].segment_id)
        )
        client.repository.put_user_file("my-results.dat", 2500)
        out = client.access_segment(ds.segments[0].segment_id)
        assert out.ok  # served, just not cached
        assert client.repository.has_user_file("my-results.dat")


class TestStats:
    def test_one_hop_hit_ratio(self, setup):
        _, server, clients = setup
        ds = segment_dataset(DatasetId("d"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=3)
        clients["a"].access_segment(ds.segments[0].segment_id)
        assert clients["a"].stats.one_hop_hit_ratio == 1.0

    def test_mean_fetch_time_zero_without_fetches(self, setup):
        _, _, clients = setup
        assert clients["a"].stats.mean_fetch_time_s == 0.0
