"""Resolve plan cache tests (repro.cdn.plancache + allocation wiring).

The tentpole contract: with the plan cache enabled, every
``resolve_candidates`` ranking is byte-identical to the uncached path —
through load skew, catalog mutations, liveness flips, graph swaps, peer
lease churn, partitions, and sharded routing — because every event that
can change a ranking bumps one of the three epoch sources (catalog
segment epoch, fabric plan epoch, peer-registry plan epoch) and stale
plans rebuild lazily at lookup.

Includes the satellite regressions: servable-view counter coverage for
every catalog mutation site, the sharded router's owner-site memo, and
the property-style random interleaving against an uncached twin.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId
from repro.obs import Registry
from repro.perf import (
    _request_workload,
    build_resolve_deployment,
    build_sharded_deployment,
    plan_cache_throughput,
)
from repro.scdn import SCDN, SCDNConfig
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import resolve_candidates_reference
from repro.cdn.content import segment_dataset
from repro.cdn.plancache import (
    UNREACHABLE_HOPS,
    CandidatePlan,
    PlanCache,
    hop_tie_runs,
)
from repro.cdn.storage import StorageRepository

from ..conftest import pub
from .test_allocation_bugfixes import graph_of, make_server


def ranking(candidates):
    """Comparable projection of a candidate list."""
    return [
        (c.replica.replica_id, c.replica.node_id, c.social_hops, c.peer)
        for c in candidates
    ]


def counter(registry, name) -> int:
    entry = registry.snapshot()["counters"].get(name)
    return int(entry["value"]) if entry else 0


# ----------------------------------------------------------------------
# plancache.py units
# ----------------------------------------------------------------------
class TestHopTieRuns:
    def test_empty(self):
        assert hop_tie_runs(np.asarray([], dtype=np.int64)) == ()

    def test_all_singletons(self):
        runs = hop_tie_runs(np.asarray([1, 2, 5], dtype=np.int64))
        assert runs == ((0, 1), (1, 2), (2, 3))

    def test_mixed_spans_cover_vector(self):
        vals = np.asarray([0, 0, 1, 1, 1, 7, UNREACHABLE_HOPS], dtype=np.int64)
        runs = hop_tie_runs(vals)
        assert runs == ((0, 2), (2, 5), (5, 6), (6, 7))
        assert runs[0][0] == 0 and runs[-1][1] == len(vals)

    def test_single_run(self):
        assert hop_tie_runs(np.asarray([3, 3, 3], dtype=np.int64)) == ((0, 3),)


class TestPlanCacheLRU:
    def _plan(self):
        return CandidatePlan(
            entries=(), nodes=(), node_strs=(), repos=(), hop_vals=(),
            seg_epoch=0, fabric_epoch=0, peer_epoch=0, peer_raw=0,
        )

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanCache(max_plans=0)

    def test_eviction_is_lru(self):
        cache = PlanCache(max_plans=2)
        a, b, c = ("s1", "r"), ("s2", "r"), ("s3", "r")
        cache.put(a, self._plan())
        cache.put(b, self._plan())
        assert cache.get(a) is not None  # refresh a: b is now LRU
        cache.put(c, self._plan())
        assert cache.evictions == 1
        assert cache.get(b) is None
        assert cache.get(a) is not None and cache.get(c) is not None

    def test_replace_does_not_evict(self):
        cache = PlanCache(max_plans=1)
        key = ("s", "r")
        cache.put(key, self._plan())
        cache.put(key, self._plan())
        assert len(cache) == 1 and cache.evictions == 0

    def test_drop_and_clear(self):
        cache = PlanCache(max_plans=4)
        key = ("s", "r")
        cache.put(key, self._plan())
        cache.drop(key)
        cache.drop(key)  # idempotent
        assert cache.get(key) is None
        cache.put(key, self._plan())
        cache.clear()
        assert len(cache) == 0

    def test_ambiguity_flag(self):
        unambiguous = CandidatePlan(
            entries=(1, 2), nodes=("a", "b"), node_strs=("a", "b"),
            repos=(None, None), hop_vals=(1, 2),
            seg_epoch=0, fabric_epoch=0, peer_epoch=0, peer_raw=0,
        )
        tied = CandidatePlan(
            entries=(1, 2), nodes=("a", "b"), node_strs=("a", "b"),
            repos=(None, None), hop_vals=(1, 1),
            seg_epoch=0, fabric_epoch=0, peer_epoch=0, peer_raw=0,
        )
        assert not unambiguous.ambiguous
        assert tied.ambiguous


# ----------------------------------------------------------------------
# differential: planned path vs reference / uncached twin
# ----------------------------------------------------------------------
def planned_deployment(**kwargs):
    server, segments, authors = build_resolve_deployment(
        registry=Registry(), **kwargs
    )
    server.enable_plan_cache()
    return server, segments, authors


class TestDifferentialPlanned:
    def test_matches_reference_on_scenario_deployment(self):
        server, segments, authors = planned_deployment(far_clusters=4, datasets=3)
        for seg, req in _request_workload(segments, authors, 200):
            assert ranking(server.resolve_candidates(seg, req)) == ranking(
                resolve_candidates_reference(server, seg, req)
            )

    def test_matches_reference_after_load_skew(self):
        """Cached plans must still track mutable load exactly: the load
        tie-break is re-applied per lookup, never frozen into the plan."""
        server, segments, authors = planned_deployment(far_clusters=2)
        for seg, req in _request_workload(segments, authors, 50):
            server.resolve(seg, req)
        for seg in segments:
            for req in authors[:5]:
                assert ranking(server.resolve_candidates(seg, req)) == ranking(
                    resolve_candidates_reference(server, seg, req)
                )

    def test_matches_reference_for_outside_requester(self):
        server, segments, _ = planned_deployment(far_clusters=2)
        ghost = AuthorId("nobody-knows-me")
        for seg in segments:
            fast = server.resolve_candidates(seg, ghost)
            assert ranking(fast) == ranking(
                resolve_candidates_reference(server, seg, ghost)
            )
            assert all(c.social_hops is None for c in fast)

    def test_limit_respected(self):
        server, segments, authors = planned_deployment(far_clusters=2)
        full = server.resolve_candidates(segments[0], authors[0])
        head = server.resolve_candidates(segments[0], authors[0], limit=2)
        assert ranking(head) == ranking(full)[:2]

    def test_resolve_and_resolve_many_match_uncached_twin(self):
        build = dict(far_clusters=3)
        s1, segments, authors = build_resolve_deployment(
            registry=Registry(), **build
        )
        s2, _, _ = planned_deployment(**build)
        workload = _request_workload(segments, authors, 150)
        sequential = [s1.resolve(seg, req) for seg, req in workload]
        batched = s2.resolve_many(workload)
        assert [(r.replica.replica_id, r.social_hops) for r in sequential] == [
            (r.replica.replica_id, r.social_hops) for r in batched
        ]

    def test_enable_disable_round_trip(self):
        server, segments, authors = build_resolve_deployment(
            registry=Registry(), far_clusters=2
        )
        assert server.plan_cache is None
        cache = server.enable_plan_cache(max_plans=8)
        assert server.enable_plan_cache() is cache  # idempotent
        server.resolve_candidates(segments[0], authors[0])
        assert len(cache) == 1
        server.disable_plan_cache()
        assert server.plan_cache is None
        # back on the uncached path, still correct
        assert ranking(server.resolve_candidates(segments[0], authors[0])) == (
            ranking(resolve_candidates_reference(server, segments[0], authors[0]))
        )

    def test_bad_capacity_rejected_at_server(self):
        server, _, _ = build_resolve_deployment(registry=Registry(), far_clusters=2)
        with pytest.raises(ConfigurationError):
            server.enable_plan_cache(max_plans=0)


class TestPlanCacheMetrics:
    def test_hit_miss_invalidation_size(self):
        reg = Registry()
        server, segments, authors = build_resolve_deployment(
            registry=reg, far_clusters=2
        )
        server.enable_plan_cache()
        seg, req = segments[0], authors[0]
        server.resolve_candidates(seg, req)
        assert counter(reg, "alloc.plan_cache.misses") == 1
        assert counter(reg, "alloc.plan_cache.hits") == 0
        server.resolve_candidates(seg, req)
        assert counter(reg, "alloc.plan_cache.hits") == 1
        assert reg.gauge("alloc.plan_cache.size").value == 1
        # a catalog mutation invalidates at the next lookup
        rid = next(iter(server.catalog.replicas_of_segment(seg))).replica_id
        server.catalog.retire(rid)
        server.resolve_candidates(seg, req)
        assert counter(reg, "alloc.plan_cache.invalidations") == 1
        assert counter(reg, "alloc.plan_cache.misses") == 2

    def test_lru_bound_enforced(self):
        server, segments, authors = build_resolve_deployment(
            registry=Registry(), far_clusters=2, datasets=2
        )
        cache = server.enable_plan_cache(max_plans=3)
        for seg, req in _request_workload(segments, authors, 40):
            server.resolve_candidates(seg, req)
        assert len(cache) <= 3
        assert cache.evictions > 0


# ----------------------------------------------------------------------
# epoch sites: every event that can change a ranking invalidates
# ----------------------------------------------------------------------
class TestEpochInvalidation:
    def _deploy(self):
        g = graph_of(
            pub("p1", 2009, "a", "b"),
            pub("p2", 2010, "b", "c"),
            pub("p3", 2010, "c", "d"),
        )
        server = make_server(g, ["a", "b", "c", "d"], capacity=100_000)
        ds = segment_dataset(DatasetId("d1"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=3)
        server.enable_plan_cache()
        return server, ds.segments[0].segment_id

    def _check(self, server, seg, requesters=("a", "b", "c", "d")):
        for r in requesters:
            assert ranking(server.resolve_candidates(seg, AuthorId(r))) == (
                ranking(resolve_candidates_reference(server, seg, AuthorId(r)))
            ), r

    def test_retire_stale_activate(self):
        server, seg = self._deploy()
        self._check(server, seg)
        reps = iter(server.catalog.replicas_of_segment(seg))
        server.catalog.retire(next(reps).replica_id)
        self._check(server, seg)
        rid = next(reps).replica_id
        server.catalog.mark_stale(rid)
        self._check(server, seg)
        server.catalog.activate(rid)
        self._check(server, seg)

    def test_quarantine(self):
        server, seg = self._deploy()
        self._check(server, seg)
        rid = next(iter(server.catalog.replicas_of_segment(seg))).replica_id
        server.catalog.quarantine(rid)
        self._check(server, seg)

    def test_node_offline_online(self):
        server, seg = self._deploy()
        self._check(server, seg)
        host = next(iter(server.catalog.replicas_of_segment(seg))).node_id
        server.node_offline(host, at=1.0)
        self._check(server, seg)
        server.node_online(host, at=2.0)
        self._check(server, seg)

    def test_repair_after_loss(self):
        server, seg = self._deploy()
        self._check(server, seg)
        host = next(iter(server.catalog.replicas_of_segment(seg))).node_id
        server.node_offline(host, at=1.0)
        server.repair(at=2.0)
        self._check(server, seg)

    def test_graph_swap(self):
        server, seg = self._deploy()
        assert server.resolve_candidates(seg, AuthorId("zz"))[0].social_hops is None
        server.graph = graph_of(
            pub("p1", 2009, "a", "b"),
            pub("p2", 2010, "b", "c"),
            pub("p3", 2010, "c", "d"),
            pub("p4", 2011, "d", "zz"),
        )
        # the cached unreachable plan must not survive the swap
        fast = server.resolve_candidates(seg, AuthorId("zz"))
        assert fast[0].social_hops is not None
        self._check(server, seg, requesters=("a", "zz"))

    def test_register_repository(self):
        server, seg = self._deploy()
        self._check(server, seg)
        server.graph = graph_of(
            pub("p1", 2009, "a", "b"),
            pub("p2", 2010, "b", "c"),
            pub("p3", 2010, "c", "d"),
            pub("p4", 2011, "a", "e"),
        )
        server.register_repository(
            AuthorId("e"), StorageRepository(NodeId("node-e"), 100_000)
        )
        self._check(server, seg, requesters=("a", "b", "e"))

    def test_migrate_node(self):
        server, seg = self._deploy()
        self._check(server, seg)
        host = next(iter(server.catalog.replicas_of_segment(seg))).node_id
        server.migrate_node(host, at=1.0)
        self._check(server, seg)

    def test_oracle_installs_bump_fabric_epoch(self):
        server, _ = self._deploy()
        before = server.fabric.plan_epoch
        server.set_liveness_oracle(lambda node: True)
        server.set_reachability_oracle(None)
        server.set_peer_registry(None)
        assert server.fabric.plan_epoch == before + 3

    def test_liveness_oracle_flip(self):
        server, seg = self._deploy()
        self._check(server, seg)
        dead = {next(iter(server.catalog.replicas_of_segment(seg))).node_id}
        server.set_liveness_oracle(lambda node: node not in dead)
        self._check(server, seg)
        # membership of the *same* oracle changes without an epoch bump:
        # liveness is read live at lookup, so this must still be exact
        dead.add(sorted(server.catalog.nodes_hosting(seg), key=str)[-1])
        self._check(server, seg)


# ----------------------------------------------------------------------
# peer tier: lease churn through the planned path
# ----------------------------------------------------------------------
def crowd_graph():
    pubs = [
        pub("p1", 2009, "o-1", "o-2"),
        pub("p2", 2010, "o-1", "relay"),
        pub("p3", 2010, "relay", "c-1"),
        pub("p4", 2010, "c-1", "c-2", "c-3"),
        pub("p5", 2011, "c-1", "c-2"),
        pub("p6", 2011, "c-2", "c-3"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


SEG_BYTES = 100_000
TIGHT = 2 * SEG_BYTES


def crowd_net(plan_cache: bool, seed=3, **overrides):
    """The peer-tier flash-crowd deployment from the peers test suite."""
    defaults = dict(
        n_replicas=2,
        proximity_hops=6,
        transfer_failure_prob=0.0,
        peer_tier=True,
        peer_lease_ttl_s=10.0,
        plan_cache=plan_cache,
    )
    defaults.update(overrides)
    net = SCDN(
        crowd_graph(), config=SCDNConfig(**defaults), seed=seed,
        registry=Registry(),
    )
    for a in ("o-1", "o-2"):
        net.join(AuthorId(a))
    net.publish(AuthorId("o-1"), "ds", 2 * SEG_BYTES, n_segments=2)
    for a in ("relay", "c-1", "c-2", "c-3"):
        net.join(AuthorId(a), capacity_bytes=TIGHT)
    return net


def crowd_seg(net):
    ds = next(iter(net.server.catalog.datasets()))
    return ds.segments[0].segment_id


class TestPeerPathPlanned:
    def test_lease_lifecycle_matches_uncached_twin(self):
        on, off = crowd_net(True), crowd_net(False)
        seg_on, seg_off = crowd_seg(on), crowd_seg(off)
        all_authors = [AuthorId(a) for a in
                       ("o-1", "o-2", "relay", "c-1", "c-2", "c-3")]

        def check():
            for req in all_authors:
                assert ranking(on.server.resolve_candidates(seg_on, req)) == (
                    ranking(off.server.resolve_candidates(seg_off, req))
                ), req

        check()  # no leases yet
        # c-3 fetches: a lease is minted on c-3
        out_on = on.clients[AuthorId("c-3")].access_segment(seg_on)
        out_off = off.clients[AuthorId("c-3")].access_segment(seg_off)
        assert out_on.ok and out_off.ok
        assert on.peers.has_active_lease(NodeId("c-3"), seg_on)
        check()  # mint invalidated the cached plans
        # a crowd neighbour now resolves to the peer first
        top = on.server.resolve_candidates(seg_on, AuthorId("c-2"))[0]
        assert top.peer and top.social_hops == 1
        # expiry closes the lease: back to the repository tier
        on.engine.run(until=11.0)
        off.engine.run(until=11.0)
        check()
        assert not on.server.resolve_candidates(seg_on, AuthorId("c-2"))[0].peer

    def test_peer_serve_counters_identical(self):
        on, off = crowd_net(True), crowd_net(False)
        seg_on, seg_off = crowd_seg(on), crowd_seg(off)
        for a in ("c-3", "c-2", "c-1", "relay"):
            assert on.clients[AuthorId(a)].access_segment(seg_on).ok
            assert off.clients[AuthorId(a)].access_segment(seg_off).ok
        for name in ("peer.serves", "peer.leases.active"):
            assert counter(on.obs, name) == counter(off.obs, name), name

    def test_eviction_and_leave_invalidate(self):
        on, off = crowd_net(True), crowd_net(False)
        seg_on, seg_off = crowd_seg(on), crowd_seg(off)
        on.clients[AuthorId("c-3")].access_segment(seg_on)
        off.clients[AuthorId("c-3")].access_segment(seg_off)
        assert on.server.resolve_candidates(seg_on, AuthorId("c-2"))[0].peer
        on.peers.leave(NodeId("c-3"))
        off.peers.leave(NodeId("c-3"))
        for req in (AuthorId("c-2"), AuthorId("c-1")):
            got = on.server.resolve_candidates(seg_on, req)
            assert ranking(got) == ranking(
                off.server.resolve_candidates(seg_off, req)
            )
            assert not got[0].peer


# ----------------------------------------------------------------------
# partitions: reachability filtering over cached plans
# ----------------------------------------------------------------------
class TestPartitionPlanned:
    def _nets(self):
        on, off = crowd_net(True, peer_tier=False), crowd_net(False, peer_tier=False)
        return on, off, crowd_seg(on), crowd_seg(off)

    def test_partition_filtering_matches_uncached_twin(self):
        on, off, seg_on, seg_off = self._nets()
        authors = [AuthorId(a) for a in
                   ("o-1", "o-2", "relay", "c-1", "c-2", "c-3")]
        for net in (on, off):  # warm the cache pre-partition
            for req in authors:
                net.server.resolve_candidates(
                    seg_on if net is on else seg_off, req
                )
        minority = [NodeId(a) for a in ("c-1", "c-2", "c-3")]
        on.network.partition([minority])
        off.network.partition([minority])
        for req in authors:
            got = on.server.resolve_candidates(seg_on, req)
            assert ranking(got) == ranking(
                off.server.resolve_candidates(seg_off, req)
            ), req
        # crowd members are cut off from the origin-side replicas
        assert on.server.resolve_candidates(seg_on, AuthorId("c-2")) == []
        on.network.heal()
        off.network.heal()
        for req in authors:
            assert ranking(on.server.resolve_candidates(seg_on, req)) == (
                ranking(off.server.resolve_candidates(seg_off, req))
            ), req
            assert on.server.resolve_candidates(seg_on, req), req


# ----------------------------------------------------------------------
# sharded routing: per-site plan caches + owner-site memo (satellite)
# ----------------------------------------------------------------------
class TestShardedPlanned:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_resolution_identical_to_uncached_flat(self, n_shards):
        build = dict(far_clusters=6, datasets=4, spread_owners=True)
        flat, segments, authors = build_resolve_deployment(
            registry=Registry(), **build
        )
        router, _, _ = build_sharded_deployment(
            registry=Registry(), n_shards=n_shards, **build
        )
        router.enable_plan_cache()
        for seg, req in _request_workload(segments, authors, 200):
            assert ranking(router.resolve_candidates(seg, req)) == ranking(
                flat.resolve_candidates(seg, req)
            )

    def test_enable_disable_covers_every_shard(self):
        router, segments, authors = build_sharded_deployment(
            registry=Registry(), n_shards=3, far_clusters=4, spread_owners=True
        )
        router.enable_plan_cache(max_plans=16)
        for shard in router.shards:
            assert shard.plan_cache is not None
            assert shard.plan_cache.max_plans == 16
        assert router.plan_cache is not None
        router.disable_plan_cache()
        assert all(s.plan_cache is None for s in router.shards)

    def test_site_memo_hits_after_first_route(self):
        router, segments, authors = build_sharded_deployment(
            registry=Registry(), n_shards=2, far_clusters=4, spread_owners=True
        )
        router.resolve_candidates(segments[0], authors[0])
        assert segments[0] in router._site_memo
        # memoized route still resolves identically
        assert ranking(router.resolve_candidates(segments[0], authors[0])) == (
            ranking(router.resolve_candidates(segments[0], authors[0]))
        )

    def test_site_memo_forgotten_on_unregister(self):
        router, segments, authors = build_sharded_deployment(
            registry=Registry(), n_shards=2, far_clusters=4, spread_owners=True
        )
        router.resolve_candidates(segments[0], authors[0])
        ds_id = next(
            ds.dataset_id
            for ds in router.catalog.datasets()
            if any(s.segment_id == segments[0] for s in ds.segments)
        )
        for rep in router.catalog.replicas_of_dataset(ds_id):
            router.catalog.retire(rep.replica_id)
        router.catalog.unregister_dataset(ds_id)
        assert segments[0] not in router._site_memo


# ----------------------------------------------------------------------
# satellite: servable-view counters cover every mutation site
# ----------------------------------------------------------------------
class TestServableCacheCounters:
    def _deploy(self):
        reg = Registry()
        g = graph_of(
            pub("p1", 2009, "a", "b"),
            pub("p2", 2010, "b", "c"),
            pub("p3", 2010, "c", "d"),
        )
        server = make_server(
            g, ["a", "b", "c", "d"], capacity=100_000, registry=reg
        )
        ds = segment_dataset(DatasetId("d1"), AuthorId("a"), 100)
        server.publish_dataset(ds, n_replicas=3)
        return server, ds.segments[0].segment_id, reg

    def _invalidations(self, reg):
        return counter(reg, "catalog.servable_cache.invalidations")

    def test_hits_and_misses_counted(self):
        server, seg, reg = self._deploy()
        server.catalog.replicas_of_segment(seg, servable_only=True)
        misses = counter(reg, "catalog.servable_cache.misses")
        assert misses >= 1
        server.catalog.replicas_of_segment(seg, servable_only=True)
        assert counter(reg, "catalog.servable_cache.hits") >= 1
        assert counter(reg, "catalog.servable_cache.misses") == misses

    def test_every_mutation_site_bumps_invalidations(self):
        server, seg, reg = self._deploy()
        cat = server.catalog
        reps = iter(cat.replicas_of_segment(seg))
        first = next(reps).replica_id
        second = next(reps).replica_id

        before = self._invalidations(reg)
        cat.retire(first)
        assert self._invalidations(reg) > before, "retire"

        before = self._invalidations(reg)
        cat.mark_stale(second)
        assert self._invalidations(reg) > before, "mark_stale"

        before = self._invalidations(reg)
        cat.activate(second)
        assert self._invalidations(reg) > before, "activate"

        before = self._invalidations(reg)
        cat.quarantine(second)
        assert self._invalidations(reg) > before, "quarantine (corrupt path)"

        before = self._invalidations(reg)
        server.repair(at=1.0)  # re-creates the quarantined copy elsewhere
        assert self._invalidations(reg) > before, "create_replica (add)"

        host = next(iter(cat.replicas_of_segment(seg))).node_id
        before = self._invalidations(reg)
        server.migrate_node(host, at=2.0)
        assert self._invalidations(reg) > before, "migrate"

        ds2 = segment_dataset(DatasetId("d2"), AuthorId("b"), 100)
        server.publish_dataset(ds2, n_replicas=2)
        for rep in cat.replicas_of_dataset(DatasetId("d2")):
            cat.retire(rep.replica_id)
        before = self._invalidations(reg)
        cat.unregister_dataset(DatasetId("d2"))
        assert self._invalidations(reg) > before, "unregister (rollback path)"

    def test_epoch_survives_unregister(self):
        """A re-registered segment id must not resurrect old plans."""
        server, seg, reg = self._deploy()
        for rep in server.catalog.replicas_of_dataset(DatasetId("d1")):
            server.catalog.retire(rep.replica_id)
        e1 = server.catalog.epoch(seg)
        server.catalog.unregister_dataset(DatasetId("d1"))
        assert server.catalog.epoch(seg) > e1


# ----------------------------------------------------------------------
# satellite: property-style random interleaving vs an uncached twin
# ----------------------------------------------------------------------
def _prop_graph(extra_pub=False):
    pubs = [
        pub("p1", 2009, "a1", "a2", "a3"),
        pub("p2", 2010, "a3", "a4"),
        pub("p3", 2010, "a4", "b1"),
        pub("p4", 2010, "b1", "b2", "b3"),
        pub("p5", 2011, "b2", "b3"),
        pub("p6", 2011, "a1", "a4"),
    ]
    if extra_pub:
        pubs.append(pub("p7", 2012, "a2", "b3"))
    return build_coauthorship_graph(Corpus(pubs))


AUTHORS = ("a1", "a2", "a3", "a4", "b1", "b2", "b3")


def _prop_net(plan_cache: bool):
    net = SCDN(
        _prop_graph(),
        config=SCDNConfig(
            n_replicas=2,
            proximity_hops=6,
            transfer_failure_prob=0.0,
            peer_tier=True,
            peer_lease_ttl_s=40.0,
            plan_cache=plan_cache,
            plan_cache_plans=64,
        ),
        seed=5,
        registry=Registry(),
    )
    for a in AUTHORS:
        net.join(AuthorId(a), capacity_bytes=10 * SEG_BYTES)
    for i, owner in enumerate(("a1", "b1", "a4")):
        net.publish(AuthorId(owner), f"ds-{i}", SEG_BYTES, n_segments=1)
    return net


class TestPropertyInvalidation:
    """Random interleavings of every invalidation source.

    Two identically seeded deployments — one with the plan cache on —
    receive the exact same operation script. After *every* step, every
    live ``(segment, requester)`` pair must rank identically on both;
    and whenever no partition or peer lease is active, both must also
    match the retained pre-index reference oracle.
    """

    STEPS = 120

    def _segments(self, net):
        return sorted(
            (s.segment_id for ds in net.server.catalog.datasets()
             for s in ds.segments),
            key=str,
        )

    def _check_all_pairs(self, on, off):
        segs = self._segments(on)
        assert segs == self._segments(off)
        for seg in segs:
            for a in AUTHORS:
                req = AuthorId(a)
                got = ranking(on.server.resolve_candidates(seg, req))
                want = ranking(off.server.resolve_candidates(seg, req))
                assert got == want, (seg, req)
                if (not off.network.partitioned
                        and off.peers.n_active_leases == 0):
                    assert got == ranking(
                        resolve_candidates_reference(off.server, seg, req)
                    ), (seg, req, "reference")

    def test_random_interleaving(self):
        rng = random.Random(20260808)
        on, off = _prop_net(True), _prop_net(False)
        swapped = False
        offline = set()

        for step in range(self.STEPS):
            op = rng.choice(
                ["access", "retire", "quarantine", "flip", "partition",
                 "advance", "swap", "access", "access", "repair"]
            )
            segs = self._segments(on)
            if op == "access":
                a = rng.choice(AUTHORS)
                seg = rng.choice(segs)
                if a not in offline and on.server.resolve_candidates(
                        seg, AuthorId(a)):
                    r_on = on.clients[AuthorId(a)].access_segment(seg)
                    r_off = off.clients[AuthorId(a)].access_segment(seg)
                    assert (r_on.ok, r_on.source) == (r_off.ok, r_off.source)
            elif op in ("retire", "quarantine"):
                seg = rng.choice(segs)
                active = sorted(
                    (r.replica_id for r in
                     on.server.catalog.replicas_of_segment(
                         seg, servable_only=True)),
                    key=str,
                )
                if active:
                    rid = rng.choice(active)
                    mutate = (on.server.catalog.retire if op == "retire"
                              else on.server.catalog.quarantine)
                    mirror = (off.server.catalog.retire if op == "retire"
                              else off.server.catalog.quarantine)
                    mutate(rid)
                    mirror(rid)
            elif op == "flip":
                a = rng.choice(AUTHORS)
                node = NodeId(a)
                now = on.engine.now
                if a in offline:
                    on.server.node_online(node, at=now)
                    off.server.node_online(node, at=now)
                    offline.discard(a)
                else:
                    on.server.node_offline(node, at=now)
                    off.server.node_offline(node, at=now)
                    offline.add(a)
            elif op == "partition":
                if on.network.partitioned:
                    on.network.heal()
                    off.network.heal()
                else:
                    side = [NodeId(a) for a in AUTHORS if a.startswith("b")]
                    on.network.partition([side])
                    off.network.partition([side])
            elif op == "advance":
                until = on.engine.now + rng.choice([5.0, 20.0, 60.0])
                on.engine.run(until=until)
                off.engine.run(until=until)
            elif op == "repair":
                now = on.engine.now
                on.server.repair(at=now)
                off.server.repair(at=now)
            elif op == "swap":
                swapped = not swapped
                g = _prop_graph(extra_pub=swapped)
                on.server.graph = g
                off.server.graph = g
            self._check_all_pairs(on, off)

        # the cache actually took traffic over the run
        assert counter(on.obs, "alloc.plan_cache.hits") > 0
        assert counter(on.obs, "alloc.plan_cache.invalidations") > 0
        assert counter(off.obs, "alloc.plan_cache.hits") == 0


# ----------------------------------------------------------------------
# bench harness smoke (the full-scale numbers live in benchmarks/)
# ----------------------------------------------------------------------
class TestBenchHarness:
    def test_plan_cache_throughput_small_is_identical(self):
        result = plan_cache_throughput(far_clusters=2, requests=200)
        assert result.identical
        assert result.plan_warm_rps > 0 and result.indexed_rps > 0
        assert result.misses > 0
        d_keys = {"far_clusters", "graph_nodes", "requests", "max_plans",
                  "indexed_rps", "plan_cold_rps", "plan_warm_rps", "speedup",
                  "hits", "misses", "invalidations", "plans_resident",
                  "identical"}
        from repro.perf import bench_to_dict, resolve_throughput
        small = resolve_throughput(far_clusters=2, requests=100)
        out = bench_to_dict(small, plan_cache=result)
        assert set(out["plan_cache"].keys()) == d_keys
