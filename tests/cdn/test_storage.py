"""Unit tests for repro.cdn.storage."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, ConfigurationError, StorageError
from repro.ids import NodeId, SegmentId
from repro.cdn.storage import StorageRepository

S1, S2 = SegmentId("d:seg0"), SegmentId("d:seg1")


@pytest.fixture
def repo():
    return StorageRepository(NodeId("n1"), 1000, replica_quota=0.5)


class TestConstruction:
    def test_partition_sizes(self, repo):
        assert repo.replica_quota_bytes == 500
        assert repo.user_quota_bytes == 500

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            StorageRepository(NodeId("n"), 0)

    def test_invalid_quota(self):
        with pytest.raises(ConfigurationError):
            StorageRepository(NodeId("n"), 100, replica_quota=0.0)
        with pytest.raises(ConfigurationError):
            StorageRepository(NodeId("n"), 100, replica_quota=1.5)

    def test_full_replica_quota_allowed(self):
        r = StorageRepository(NodeId("n"), 100, replica_quota=1.0)
        assert r.user_quota_bytes == 0


class TestReplicaPartition:
    def test_store_and_read(self, repo):
        repo.store_replica(S1, 200)
        assert repo.hosts_segment(S1)
        assert repo.replica_used_bytes == 200
        assert repo.read_segment(S1) == 200

    def test_capacity_enforced(self, repo):
        repo.store_replica(S1, 400)
        with pytest.raises(CapacityError):
            repo.store_replica(S2, 200)
        assert not repo.hosts_segment(S2)

    def test_duplicate_rejected(self, repo):
        repo.store_replica(S1, 100)
        with pytest.raises(StorageError):
            repo.store_replica(S1, 100)

    def test_evict_frees_space(self, repo):
        repo.store_replica(S1, 400)
        assert repo.evict_replica(S1) == 400
        assert repo.replica_free_bytes == 500
        repo.store_replica(S2, 450)

    def test_evict_unknown_raises(self, repo):
        with pytest.raises(StorageError):
            repo.evict_replica(S1)

    def test_read_unknown_raises(self, repo):
        with pytest.raises(StorageError):
            repo.read_segment(S1)

    def test_user_cannot_delete_replica_data(self, repo):
        repo.store_replica(S1, 100)
        with pytest.raises(StorageError, match="read-only"):
            repo.delete_from_replica_partition(S1)
        assert repo.hosts_segment(S1)

    def test_hosted_segments(self, repo):
        repo.store_replica(S1, 100)
        repo.store_replica(S2, 100)
        assert repo.hosted_segments() == {S1, S2}

    def test_can_host(self, repo):
        assert repo.can_host(500)
        assert not repo.can_host(501)


class TestUserPartition:
    def test_put_get_delete(self, repo):
        repo.put_user_file("a.dat", 100)
        assert repo.has_user_file("a.dat")
        assert repo.user_file_size("a.dat") == 100
        assert repo.delete_user_file("a.dat") == 100
        assert not repo.has_user_file("a.dat")

    def test_overwrite_counts_delta(self, repo):
        repo.put_user_file("a.dat", 400)
        repo.put_user_file("a.dat", 500)  # delta 100 fits
        assert repo.user_used_bytes == 500

    def test_capacity_enforced(self, repo):
        repo.put_user_file("a.dat", 400)
        with pytest.raises(CapacityError):
            repo.put_user_file("b.dat", 200)

    def test_user_files_listing(self, repo):
        repo.put_user_file("a", 1)
        repo.put_user_file("b", 1)
        assert repo.user_files() == ["a", "b"]

    def test_delete_unknown_raises(self, repo):
        with pytest.raises(StorageError):
            repo.delete_user_file("nope")

    def test_size_of_unknown_raises(self, repo):
        with pytest.raises(StorageError):
            repo.user_file_size("nope")

    def test_partitions_are_independent(self, repo):
        repo.store_replica(S1, 500)  # fills replica partition
        repo.put_user_file("a.dat", 500)  # user partition unaffected


class TestStats:
    def test_snapshot(self, repo):
        repo.store_replica(S1, 200)
        repo.put_user_file("a", 50)
        repo.read_segment(S1)
        repo.read_segment(S1)
        s = repo.stats()
        assert s.replica_used_bytes == 200
        assert s.user_used_bytes == 50
        assert s.n_replicas == 1
        assert s.n_user_files == 1
        assert s.reads_served == 2
        assert s.bytes_served == 400
        assert s.replica_free_bytes == 300
        assert s.user_free_bytes == 450
