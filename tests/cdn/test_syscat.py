"""Unit tests for repro.cdn.syscat — the federation's system catalog."""

from __future__ import annotations

import json

import networkx as nx
import pytest

from repro.errors import CatalogError, ConfigurationError
from repro.ids import AuthorId, DatasetId, SegmentId
from repro.social.graph import CoauthorshipGraph, build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.syscat import (
    ConsistentHashRing,
    Fragment,
    Site,
    SystemCatalog,
    build_system_catalog,
)

from ..conftest import pub


def two_site_catalog() -> SystemCatalog:
    cat = SystemCatalog()
    cat.register_site(Site(site_id=0, name="site-0"))
    cat.register_site(Site(site_id=1, name="site-1"))
    return cat


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = ConsistentHashRing([0, 1, 2])
        b = ConsistentHashRing([0, 1, 2])
        keys = [f"author-{i}" for i in range(200)]
        assert [a.site_of(k) for k in keys] == [b.site_of(k) for k in keys]

    def test_all_sites_reachable(self):
        ring = ConsistentHashRing([0, 1, 2, 3])
        hit = {ring.site_of(f"k{i}") for i in range(500)}
        assert hit == {0, 1, 2, 3}

    def test_adding_a_site_moves_few_keys(self):
        """The consistent-hash property: growing the federation only
        remaps the keys the new site takes over."""
        keys = [f"author-{i}" for i in range(400)]
        before = ConsistentHashRing([0, 1, 2])
        after = ConsistentHashRing([0, 1, 2, 3])
        moved = sum(
            1
            for k in keys
            if before.site_of(k) != after.site_of(k)
        )
        remapped = [k for k in keys if after.site_of(k) == 3]
        assert moved == len(remapped)  # only keys claimed by the new site move
        assert 0 < moved < len(keys) // 2

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing([])

    def test_bad_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing([0], replicas=0)


class TestSites:
    def test_sites_in_id_order(self):
        cat = SystemCatalog()
        cat.register_site(Site(site_id=2, name="late"))
        cat.register_site(Site(site_id=0, name="early"))
        assert [s.site_id for s in cat.sites()] == [0, 2]
        assert cat.n_sites == 2

    def test_duplicate_site_rejected(self):
        cat = two_site_catalog()
        with pytest.raises(CatalogError):
            cat.register_site(Site(site_id=0, name="again"))


class TestAuthors:
    def test_assignment_and_lookup(self):
        cat = two_site_catalog()
        cat.assign_author(AuthorId("a"), 0)
        cat.assign_author(AuthorId("b"), 1)
        assert cat.site_of_author(AuthorId("a")) == 0
        assert cat.site_of_author(AuthorId("b")) == 1
        assert cat.site_of_author(AuthorId("ghost")) is None
        assert cat.authors_of_site(0) == [AuthorId("a")]

    def test_double_assignment_rejected(self):
        cat = two_site_catalog()
        cat.assign_author(AuthorId("a"), 0)
        with pytest.raises(CatalogError):
            cat.assign_author(AuthorId("a"), 1)

    def test_unknown_site_rejected(self):
        cat = two_site_catalog()
        with pytest.raises(CatalogError):
            cat.assign_author(AuthorId("a"), 9)
        with pytest.raises(CatalogError):
            cat.authors_of_site(9)

    def test_fallback_is_sticky_and_recorded(self):
        cat = two_site_catalog()
        first = cat.assign_author_fallback(AuthorId("late-joiner"))
        assert cat.site_of_author(AuthorId("late-joiner")) == first
        assert cat.assign_author_fallback(AuthorId("late-joiner")) == first

    def test_fallback_respects_existing_assignment(self):
        cat = two_site_catalog()
        cat.assign_author(AuthorId("a"), 1)
        assert cat.assign_author_fallback(AuthorId("a")) == 1

    def test_fallback_without_sites_rejected(self):
        with pytest.raises(CatalogError):
            SystemCatalog().assign_author_fallback(AuthorId("a"))


class TestDatasetsAndFragments:
    def test_registration_order_and_lookup(self):
        cat = two_site_catalog()
        cat.register_dataset(DatasetId("d2"), 1)
        cat.register_dataset(DatasetId("d1"), 0)
        assert cat.datasets() == [DatasetId("d2"), DatasetId("d1")]
        assert cat.site_of_dataset(DatasetId("d2")) == 1
        frag = cat.register_fragment(SegmentId("d1:seg0"), DatasetId("d1"), 0)
        assert frag == Fragment(SegmentId("d1:seg0"), DatasetId("d1"), 0)
        assert cat.site_of_segment(SegmentId("d1:seg0")) == 0
        assert cat.has_dataset(DatasetId("d1"))
        assert cat.has_segment(SegmentId("d1:seg0"))
        assert cat.fragments_of_site(0) == [frag]
        assert cat.fragments_of_site(1) == []

    def test_duplicate_and_unknown_registrations_rejected(self):
        cat = two_site_catalog()
        cat.register_dataset(DatasetId("d"), 0)
        with pytest.raises(CatalogError):
            cat.register_dataset(DatasetId("d"), 1)
        with pytest.raises(CatalogError):
            cat.register_fragment(SegmentId("x:seg0"), DatasetId("missing"), 0)
        cat.register_fragment(SegmentId("d:seg0"), DatasetId("d"), 0)
        with pytest.raises(CatalogError):
            cat.register_fragment(SegmentId("d:seg0"), DatasetId("d"), 0)
        with pytest.raises(CatalogError):
            cat.site_of_segment(SegmentId("nope:seg0"))
        with pytest.raises(CatalogError):
            cat.site_of_dataset(DatasetId("nope"))

    def test_drop_dataset_removes_fragments(self):
        cat = two_site_catalog()
        cat.register_dataset(DatasetId("d"), 0)
        cat.register_fragment(SegmentId("d:seg0"), DatasetId("d"), 0)
        cat.register_fragment(SegmentId("d:seg1"), DatasetId("d"), 0)
        cat.drop_dataset(DatasetId("d"))
        assert not cat.has_dataset(DatasetId("d"))
        assert not cat.has_segment(SegmentId("d:seg0"))
        assert cat.datasets() == []
        assert cat.fragments_of_site(0) == []

    def test_snapshot_is_json_able(self):
        cat = two_site_catalog()
        cat.assign_author(AuthorId("a"), 0)
        cat.register_dataset(DatasetId("d"), 0)
        cat.register_fragment(SegmentId("d:seg0"), DatasetId("d"), 0)
        snap = json.loads(json.dumps(cat.snapshot()))
        assert snap["authors"] == {"a": 0}
        assert snap["datasets"] == [{"dataset_id": "d", "site_id": 0}]
        assert snap["fragments"][0]["segment_id"] == "d:seg0"


class TestBuildSystemCatalog:
    def test_communities_land_whole_and_balanced(self):
        pubs = [
            pub("l", 2009, "a1", "a2", "a3", "a4"),
            pub("r", 2009, "b1", "b2", "b3", "b4"),
            pub("bridge", 2010, "a1", "b1"),
        ]
        g = build_coauthorship_graph(Corpus(pubs))
        cat = build_system_catalog(g, 2)
        site_of = {a: cat.site_of_author(AuthorId(a)) for a in g.nodes()}
        a_sites = {site_of[a] for a in ("a1", "a2", "a3", "a4")}
        b_sites = {site_of[b] for b in ("b1", "b2", "b3", "b4")}
        assert len(a_sites) == 1 and len(b_sites) == 1  # never split
        assert a_sites != b_sites  # balance: second community on the other site

    def test_single_site_takes_everything(self):
        g = build_coauthorship_graph(Corpus([pub("p", 2009, "a", "b")]))
        cat = build_system_catalog(g, 1)
        assert cat.site_of_author(AuthorId("a")) == 0
        assert cat.site_of_author(AuthorId("b")) == 0

    def test_edgeless_graph_uses_hash_ring(self):
        g = nx.Graph()
        g.add_nodes_from(["a", "b", "c", "d"])
        cat = build_system_catalog(CoauthorshipGraph(g), 2)
        ring = ConsistentHashRing([0, 1])
        for a in ("a", "b", "c", "d"):
            assert cat.site_of_author(AuthorId(a)) == ring.site_of(a)

    def test_empty_graph_has_no_assignments(self):
        cat = build_system_catalog(CoauthorshipGraph(nx.Graph()), 2)
        assert cat.n_sites == 2
        assert cat.authors_of_site(0) == []
        assert cat.authors_of_site(1) == []

    def test_bad_site_count_rejected(self):
        g = build_coauthorship_graph(Corpus([pub("p", 2009, "a", "b")]))
        with pytest.raises(ConfigurationError):
            build_system_catalog(g, 0)

    def test_deterministic(self):
        pubs = [
            pub("l", 2009, "a1", "a2", "a3"),
            pub("r", 2009, "b1", "b2", "b3"),
            pub("m", 2009, "c1", "c2", "c3"),
            pub("bridge", 2010, "a1", "b1"),
            pub("bridge2", 2010, "b1", "c1"),
        ]
        g = build_coauthorship_graph(Corpus(pubs))
        assert (
            build_system_catalog(g, 3).snapshot()
            == build_system_catalog(g, 3).snapshot()
        )
