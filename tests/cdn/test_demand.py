"""EWMA demand tracking (repro.cdn.demand)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, SegmentId
from repro.obs import Registry
from repro.cdn.demand import DemandTracker

S1 = SegmentId("seg-1")
S2 = SegmentId("seg-2")
ALICE = AuthorId("alice")
BOB = AuthorId("bob")


def tracker(**kw):
    kw.setdefault("registry", Registry())
    return DemandTracker(**kw)


class TestValidation:
    def test_half_life_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            tracker(half_life_s=0.0)
        with pytest.raises(ConfigurationError):
            tracker(half_life_s=-1.0)

    def test_record_count_must_be_positive(self):
        t = tracker()
        with pytest.raises(ConfigurationError):
            t.record_access(S1, count=0)

    def test_hot_segments_min_rate_validated(self):
        with pytest.raises(ConfigurationError):
            tracker().hot_segments(-0.1)


class TestFolding:
    def test_first_fold_blends_toward_window_mean(self):
        # 10 accesses over a 100 s window with half_life 100: the EWMA
        # blends 0 (decayed by 0.5) with the window mean 0.1 at weight 0.5
        t = tracker(half_life_s=100.0)
        t.record_access(S1, count=10)
        assert t.fold(100.0) == 10
        assert t.rate(S1) == pytest.approx(0.05)

    def test_idle_segment_decays_by_half_life(self):
        t = tracker(half_life_s=100.0)
        t.record_access(S1, count=10)
        t.fold(100.0)
        before = t.rate(S1)
        t.fold(200.0)  # one idle half-life
        assert t.rate(S1) == pytest.approx(before * 0.5)

    def test_fold_with_zero_dt_keeps_pending(self):
        t = tracker()
        t.record_access(S1)
        assert t.fold(0.0) == 0
        assert t.rate(S1) == 0.0
        assert t.fold(10.0) == 1
        assert t.rate(S1) > 0.0

    def test_rate_floor_evicts_cold_segments(self):
        t = tracker(half_life_s=1.0)
        t.record_access(S1)
        t.fold(1.0)
        assert t.tracked_segments == 1
        # ~50 idle half-lives pushes the rate far below the floor
        t.fold(51.0)
        assert t.tracked_segments == 0
        assert t.rate(S1) == 0.0
        assert t.top_requesters(S1) == []

    def test_fold_is_deterministic(self):
        def run():
            t = tracker(half_life_s=60.0)
            for i in range(5):
                t.record_access(S1, ALICE, count=i + 1)
                t.record_access(S2, BOB)
                t.fold(30.0 * (i + 1))
            return t.rate(S1), t.rate(S2)

        assert run() == run()


class TestQueries:
    def test_hot_segments_sorted_hottest_first(self):
        t = tracker()
        t.record_access(S1, count=2)
        t.record_access(S2, count=8)
        t.fold(100.0)
        hot = t.hot_segments(0.0)
        assert [s for s, _ in hot] == [S2, S1]
        assert t.hot_segments(t.rate(S2)) == [(S2, t.rate(S2))]

    def test_top_requesters_attribution_and_cap(self):
        t = tracker()
        t.record_access(S1, ALICE, count=5)
        t.record_access(S1, BOB, count=1)
        t.record_access(S1)  # unattributed: rate only, no requester weight
        t.fold(100.0)
        top = t.top_requesters(S1)
        assert [a for a, _ in top] == [ALICE, BOB]
        assert top[0][1] > top[1][1]
        assert t.top_requesters(S1, n=1) == top[:1]


class TestIngest:
    def test_ingest_consumes_resolve_traces_once(self):
        reg = Registry()
        t = DemandTracker(registry=reg)
        reg.trace("resolve", ts=1.0, segment=str(S1), requester=str(ALICE))
        reg.trace("resolve", ts=2.0, segment=str(S1), requester=str(BOB))
        reg.trace("other", ts=3.0, segment=str(S1))
        assert t.ingest(reg) == 2
        assert t.ingest(reg) == 0  # same ring, no double-count
        t.fold(10.0)
        assert t.rate(S1) > 0.0
        assert {a for a, _ in t.top_requesters(S1)} == {ALICE, BOB}

    def test_ingest_counts_ring_overwrite_gap(self):
        reg = Registry(trace_capacity=4)
        t = DemandTracker(registry=reg)
        reg.trace("resolve", ts=0.0, segment=str(S1))
        t.ingest(reg)
        for i in range(8):  # overwrite the whole ring twice
            reg.trace("resolve", ts=float(i), segment=str(S1))
        t.ingest(reg)
        snap = reg.snapshot()
        assert snap["counters"]["demand.trace_gap"]["value"] > 0
