"""Client read-credit and cache byte-accounting regressions (repro.cdn.client).

Three past bugs, pinned:

* a primary whose transfer failed was credited with the read before the
  failover rerouted it (double-counting load onto a dead host),
* dataset-level access re-resolved each segment with recording on, so a
  cached segment could still bump a replica's demand signal,
* a fetch too large to ever fit in user space wiped every cache entry
  before discovering it still would not fit.
"""

from __future__ import annotations

import pytest

from repro.ids import AuthorId, DatasetId, NodeId
from repro.obs import Registry
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.client import CDNClient
from repro.cdn.content import ReplicaState, segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.storage import StorageRepository
from repro.cdn.transfer import TransferClient
from repro.sim.network import GeoPoint, NetworkModel

from ..conftest import pub

AUTHORS = ("a", "b", "c", "d", "e")


def line_graph():
    pubs = [
        pub("p1", 2010, "a", "b"),
        pub("p2", 2010, "b", "c"),
        pub("p3", 2010, "c", "d"),
        pub("p4", 2010, "d", "e"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


def make_rig(*, omit_from_network=(), client_capacity=10_000):
    """Server + client for author 'a'; replica placement is set per test."""
    registry = Registry()
    server = AllocationServer(
        line_graph(), RandomPlacement(), seed=0, registry=registry
    )
    for author in AUTHORS:
        cap = client_capacity if author == "a" else 10_000
        server.register_repository(
            AuthorId(author), StorageRepository(NodeId(author), cap)
        )
    network = NetworkModel()
    for author in AUTHORS:
        if author not in omit_from_network:
            network.add_node(NodeId(author), GeoPoint(0.0, 0.0))
    transfer = TransferClient(network, failure_prob=0.0, seed=1, registry=registry)
    client = CDNClient(
        AuthorId("a"), server.repository(NodeId("a")), server, transfer
    )
    return server, client


def place_on(server, dataset_id, size_bytes, nodes, *, n_segments=1):
    """Publish a dataset, then force its replicas onto exactly ``nodes``."""
    ds = segment_dataset(
        DatasetId(dataset_id), AuthorId("a"), size_bytes, n_segments=n_segments
    )
    server.publish_dataset(ds, n_replicas=len(nodes))
    for segment in ds.segments:
        seg = segment.segment_id
        for r in server.catalog.replicas_of_segment(seg):
            server.catalog.retire(r.replica_id)
            repo = server.repository(r.node_id)
            if repo.hosts_segment(seg):
                repo.evict_replica(seg)
        for node in nodes:
            server.catalog.create_replica(seg, node, state=ReplicaState.ACTIVE)
            server.repository(node).store_replica(
                seg, segment.size_bytes, digest=segment.digest
            )
    return ds


def read_counts(server, seg):
    return {
        r.node_id: r.access_count
        for r in server.catalog.replicas_of_segment(seg)
        if r.state is not ReplicaState.RETIRED
    }


class TestFailoverReadCredit:
    def test_failed_primary_gets_no_read_credit(self):
        # replicas at hops 1 (b) and 3 (d) from the requester: b is the
        # ranked primary, and b is missing from the network so its
        # transfer raises and the fetch fails over to d
        server, client = make_rig(omit_from_network=("b",))
        ds = place_on(server, "ds", 1000, [NodeId("b"), NodeId("d")])
        seg = ds.segments[0].segment_id
        outcome = client.access_segment(seg)
        assert outcome.ok and outcome.source == "remote"
        assert client.stats.failovers == 1
        counts = read_counts(server, seg)
        assert counts[NodeId("b")] == 0  # never served: no credit
        assert counts[NodeId("d")] == 1  # served exactly once
        assert server.repository(NodeId("b")).reads_served == 0
        assert server.repository(NodeId("d")).reads_served == 1

    def test_clean_fetch_credits_exactly_one_read(self):
        server, client = make_rig()
        ds = place_on(server, "ds", 1000, [NodeId("b"), NodeId("d")])
        seg = ds.segments[0].segment_id
        assert client.access_segment(seg).ok
        assert sum(read_counts(server, seg).values()) == 1


class TestRepeatAccessAccounting:
    def test_cache_hit_adds_no_read_credit(self):
        server, client = make_rig()
        ds = place_on(server, "ds", 1000, [NodeId("b"), NodeId("c")])
        seg = ds.segments[0].segment_id
        assert client.access_segment(seg).source == "remote"
        assert client.access_segment(seg).source == "user-cache"
        assert sum(read_counts(server, seg).values()) == 1
        assert client.stats.cache_hits == 1 and client.stats.remote_fetches == 1

    def test_dataset_access_credits_each_segment_once(self):
        server, client = make_rig()
        ds = place_on(
            server, "ds", 2000, [NodeId("b"), NodeId("c")], n_segments=2
        )
        outcomes = client.access_dataset(DatasetId("ds"))
        assert [o.ok for o in outcomes] == [True, True]
        for segment in ds.segments:
            assert sum(read_counts(server, segment.segment_id).values()) == 1
        assert client.stats.bytes_fetched == 2000


class TestCacheByteAccounting:
    def test_unservable_fetch_does_not_wipe_the_cache(self):
        # user partition: 100 bytes; 60 are the user's own file. A cached
        # 30-byte segment fits; a 50-byte fetch can never fit (only 40
        # reclaimable) and must leave the existing cache entry alone.
        server, client = make_rig(client_capacity=200)
        client.repository.put_user_file("own-data", 60)
        small = place_on(server, "small", 30, [NodeId("b")])
        big = place_on(server, "big", 50, [NodeId("c")])
        small_seg = small.segments[0].segment_id
        assert client.access_segment(small_seg).ok
        assert client.repository.has_user_file(f"cache:{small_seg}")
        outcome = client.access_segment(big.segments[0].segment_id)
        assert outcome.ok  # stream-only access still succeeds
        assert client.repository.has_user_file(f"cache:{small_seg}")
        assert not client.repository.has_user_file(
            f"cache:{big.segments[0].segment_id}"
        )

    def test_eviction_still_runs_when_it_can_help(self):
        server, client = make_rig(client_capacity=200)
        first = place_on(server, "first", 60, [NodeId("b")])
        second = place_on(server, "second", 80, [NodeId("c")])
        f_seg = first.segments[0].segment_id
        s_seg = second.segments[0].segment_id
        assert client.access_segment(f_seg).ok
        assert client.access_segment(s_seg).ok
        # 60 + 80 exceed the 100-byte partition: the older entry goes
        assert not client.repository.has_user_file(f"cache:{f_seg}")
        assert client.repository.has_user_file(f"cache:{s_seg}")
