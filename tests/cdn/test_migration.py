"""Replica migration & rebalancing (repro.cdn.migration)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, DatasetId, NodeId, SegmentId
from repro.obs import Registry
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.cdn.allocation import AllocationServer
from repro.cdn.content import ReplicaState, segment_dataset
from repro.cdn.demand import DemandTracker
from repro.cdn.migration import (
    MigrationAction,
    MigrationConfig,
    MigrationEngine,
    MigrationKind,
)
from repro.cdn.placement import RandomPlacement
from repro.cdn.storage import StorageRepository
from repro.cdn.transfer import TransferClient
from repro.sim.engine import SimulationEngine
from repro.sim.network import GeoPoint, NetworkModel
from repro.sim.scenarios import compare_demand_shift

from ..conftest import pub

AUTHORS = ("alice", "bob", "carol", "dave", "erin")
SEG_BYTES = 1000


def clique_graph():
    # one five-author publication: complete graph, all hops equal
    return build_coauthorship_graph(Corpus([pub("p1", 2010, *AUTHORS)]))


class Rig:
    """Server + uniform network + verified transfers + one 2-replica dataset."""

    def __init__(self, *, n_replicas=2, capacity=10_000):
        self.registry = Registry()
        self.graph = clique_graph()
        self.server = AllocationServer(
            self.graph, RandomPlacement(), seed=0, registry=self.registry
        )
        self.network = NetworkModel()
        for a in AUTHORS:
            self.network.add_node(NodeId(a), GeoPoint(0.0, 0.0))
            self.server.register_repository(
                AuthorId(a), StorageRepository(NodeId(a), capacity)
            )
        self.transfer = TransferClient(
            self.network, failure_prob=0.0, seed=1, registry=self.registry
        )
        self.transfer.set_digest_resolver(self._digest)
        ds = segment_dataset(DatasetId("d"), AuthorId("alice"), SEG_BYTES)
        self.server.publish_dataset(ds, n_replicas=n_replicas)
        self.seg: SegmentId = ds.segments[0].segment_id
        self.hosts = sorted(
            r.node_id for r in self.server.catalog.replicas_of_segment(self.seg)
        )
        self.engine = MigrationEngine(
            self.server, self.transfer, registry=self.registry, seed=3
        )

    def _digest(self, node, segment_id):
        if not self.server.has_node(node):
            return None
        repo = self.server.repository(node)
        if not repo.hosts_segment(segment_id):
            return None
        return repo.stored_digest(segment_id)

    def non_holder(self) -> NodeId:
        return next(NodeId(a) for a in AUTHORS if NodeId(a) not in self.hosts)

    def servable_nodes(self):
        return sorted(
            r.node_id
            for r in self.server.catalog.replicas_of_segment(
                self.seg, servable_only=True
            )
        )

    def swap_out(self, author: AuthorId):
        keep = [a for a in self.graph.nodes() if a != author]
        self.server.graph = self.graph.subgraph(keep)


class TestConfig:
    def test_defaults_valid(self):
        MigrationConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"interval_s": 0.0},
            {"hot_rate_per_s": -1.0},
            {"promote_headroom": -1},
            {"load_watermark": 0.0},
            {"load_watermark": 1.5},
            {"max_moves_per_cycle": 0},
            {"max_bytes_per_cycle": -1},
            {"max_in_flight": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ConfigurationError):
            MigrationConfig(**kw)


class TestPromotion:
    def test_hot_segment_promoted_near_the_demand(self):
        rig = Rig()
        requester = AuthorId(str(rig.non_holder()))
        rig.engine.demand.record_access(rig.seg, requester, count=100)
        report = rig.engine.run_cycle(at=100.0)
        assert report.promotes == 1 and report.started == 1
        assert rig.engine.total_completed == 1
        # demand-weighted target: the requester's own node (hops cost 0)
        assert NodeId(str(requester)) in rig.servable_nodes()
        assert len(rig.servable_nodes()) == 3

    def test_promotion_stops_at_budget_plus_headroom(self):
        rig = Rig()  # budget 2, headroom 1
        requester = AuthorId(str(rig.non_holder()))
        rig.engine.demand.record_access(rig.seg, requester, count=100)
        rig.engine.run_cycle(at=100.0)
        assert len(rig.servable_nodes()) == 3
        rig.engine.demand.record_access(rig.seg, requester, count=100)
        report = rig.engine.run_cycle(at=200.0)
        assert report.promotes == 0
        assert len(rig.servable_nodes()) == 3

    def test_cold_segments_left_alone(self):
        rig = Rig()
        report = rig.engine.run_cycle(at=100.0)
        assert report.planned == 0
        assert rig.servable_nodes() == rig.hosts


class TestRebalance:
    def make_overloaded(self, rig):
        """Put a copy on a tiny repo so its replica partition runs hot."""
        small = AuthorId("frank")
        node = NodeId("frank")
        g = build_coauthorship_graph(Corpus([pub("p1", 2010, *AUTHORS, "frank")]))
        rig.server.graph = g
        rig.graph = g
        rig.network.add_node(node, GeoPoint(0.0, 0.0))
        # replica quota = capacity / 2 = exactly one segment: util 1.0
        rig.server.register_repository(small, StorageRepository(node, 2 * SEG_BYTES))
        segment = rig.server.catalog.segment(rig.seg)
        rig.server.catalog.create_replica(
            rig.seg, node, state=ReplicaState.ACTIVE
        )
        rig.server.repository(node).store_replica(
            rig.seg, SEG_BYTES, digest=segment.digest
        )
        return node

    def test_overloaded_node_sheds_coldest_replica(self):
        rig = Rig()
        node = self.make_overloaded(rig)
        report = rig.engine.run_cycle(at=10.0)
        assert report.rebalances == 1
        assert rig.engine.total_completed == 1
        assert node not in rig.servable_nodes()
        assert not rig.server.repository(node).hosts_segment(rig.seg)
        assert len(rig.servable_nodes()) == 3  # moved, not dropped

    def test_nodes_below_watermark_stay_put(self):
        rig = Rig()
        report = rig.engine.run_cycle(at=10.0)
        assert report.rebalances == 0


class TestEviction:
    def test_untrusted_host_drained_copy_first(self):
        rig = Rig()  # budget 2 == servable 2: eviction must copy first
        evicted = AuthorId(str(rig.hosts[0]))
        rig.swap_out(evicted)
        report = rig.engine.run_cycle(at=10.0)
        assert report.evictions == 1 and report.started == 1
        assert rig.engine.total_completed == 1 and rig.engine.total_failed == 0
        assert rig.server.untrusted_hosts() == [NodeId(str(evicted))]
        assert rig.server.catalog.replicas_on_node(NodeId(str(evicted))) == []
        assert len(rig.servable_nodes()) == 2
        assert rig.engine.min_mid_move_redundancy >= 1.0
        assert rig.engine.executor.retired_untrusted_total == 1

    def test_redundant_untrusted_copy_retired_without_transfer(self):
        rig = Rig()
        # third copy on a non-holder, then distrust that author: trusted
        # servable already meets the budget, so no copy is needed
        extra = rig.non_holder()
        segment = rig.server.catalog.segment(rig.seg)
        rig.server.catalog.create_replica(rig.seg, extra, state=ReplicaState.ACTIVE)
        rig.server.repository(extra).store_replica(
            rig.seg, SEG_BYTES, digest=segment.digest
        )
        rig.swap_out(AuthorId(str(extra)))
        before = len(rig.transfer.completed)
        report = rig.engine.run_cycle(at=10.0)
        assert report.evictions == 1 and report.started == 0
        assert report.completed == 1
        assert len(rig.transfer.completed) == before  # no copy happened
        assert rig.server.catalog.replicas_on_node(extra) == []
        assert not rig.server.repository(extra).hosts_segment(rig.seg)

    def test_retire_only_revalidated_at_settle_time(self):
        # a retire-only action whose safety premise no longer holds must
        # fail (and be re-planned as a copy) rather than dip below budget
        rig = Rig()
        rep = rig.server.catalog.replicas_of_segment(rig.seg)[0]
        action = MigrationAction(
            kind=MigrationKind.EVICT_UNTRUSTED,
            segment_id=rig.seg,
            target_node=None,
            source_replica_id=rep.replica_id,
            reason="stale plan",
        )
        counts = rig.engine.executor.execute([action], at=5.0)
        assert counts["failed"] == 1 and counts["completed"] == 0
        assert rig.server.catalog.replica(rep.replica_id).servable
        reasons = [
            ev.fields.get("reason")
            for ev in rig.registry.traces.events()
            if ev.kind == "migration_move_failed"
        ]
        assert reasons == ["needs-copy-first"]


class TestSourceSelection:
    def promote_action(self, rig, target):
        return MigrationAction(
            kind=MigrationKind.PROMOTE,
            segment_id=rig.seg,
            target_node=target,
            source_replica_id=None,
            reason="test",
        )

    def test_corrupt_source_never_copied_from(self):
        rig = Rig()
        bad, good = rig.hosts
        rig.server.repository(bad).corrupt_replica(rig.seg)
        counts = rig.engine.executor.execute(
            [self.promote_action(rig, rig.non_holder())], at=1.0
        )
        assert counts["started"] == 1 and counts["completed"] == 1
        assert rig.transfer.completed[-1].request.source == good

    def test_quarantined_source_never_copied_from(self):
        rig = Rig()
        bad, good = rig.hosts
        rep = next(
            r
            for r in rig.server.catalog.replicas_of_segment(rig.seg)
            if r.node_id == bad
        )
        rig.server.quarantine_replica(rep.replica_id)
        counts = rig.engine.executor.execute(
            [self.promote_action(rig, rig.non_holder())], at=1.0
        )
        assert counts["started"] == 1
        assert rig.transfer.completed[-1].request.source == good

    def test_no_verified_source_fails_the_move(self):
        rig = Rig()
        for node in rig.hosts:
            rig.server.repository(node).corrupt_replica(rig.seg)
        target = rig.non_holder()
        counts = rig.engine.executor.execute(
            [self.promote_action(rig, target)], at=1.0
        )
        assert counts["failed"] == 1 and counts["started"] == 0
        assert target not in rig.servable_nodes()
        reasons = [
            ev.fields.get("reason")
            for ev in rig.registry.traces.events()
            if ev.kind == "migration_move_failed"
        ]
        assert reasons == ["no-verified-source"]


class TestThrottle:
    def test_moves_beyond_per_cycle_cap_deferred(self):
        rig = Rig()
        rig.engine.config = rig.engine.executor.config = MigrationConfig(
            max_moves_per_cycle=1
        )
        targets = [NodeId(a) for a in AUTHORS if NodeId(a) not in rig.hosts][:2]
        actions = [
            MigrationAction(MigrationKind.PROMOTE, rig.seg, t, None, "test")
            for t in targets
        ]
        counts = rig.engine.executor.execute(actions, at=1.0)
        assert counts["started"] == 1 and counts["deferred"] == 1
        snap = rig.registry.snapshot()
        assert snap["counters"]["migration.moves.deferred"]["value"] == 1

    def test_byte_budget_defers(self):
        rig = Rig()
        rig.engine.executor.config = MigrationConfig(
            max_bytes_per_cycle=SEG_BYTES - 1
        )
        action = MigrationAction(
            MigrationKind.PROMOTE, rig.seg, rig.non_holder(), None, "test"
        )
        counts = rig.engine.executor.execute([action], at=1.0)
        assert counts["started"] == 0 and counts["deferred"] == 1


class TestCopyFirstTiming:
    def test_source_stays_servable_until_the_copy_lands(self):
        rig = Rig()
        sim = SimulationEngine(registry=rig.registry)
        rig.engine.executor.bind(sim)
        source = next(
            r
            for r in rig.server.catalog.replicas_of_segment(rig.seg)
            if r.node_id == rig.hosts[0]
        )
        target = rig.non_holder()
        action = MigrationAction(
            MigrationKind.REBALANCE, rig.seg, target, source.replica_id, "test"
        )
        counts = rig.engine.executor.execute([action], at=0.0)
        assert counts["started"] == 1
        # mid-flight: old copy still serves, new copy not yet servable
        assert rig.engine.executor.in_flight == 1
        assert rig.server.catalog.replica(source.replica_id).servable
        assert target not in rig.servable_nodes()
        sim.run(until=10.0)
        assert rig.engine.executor.in_flight == 0
        assert rig.server.catalog.replica(source.replica_id).state is ReplicaState.RETIRED
        assert target in rig.servable_nodes()
        assert rig.engine.min_mid_move_redundancy >= 1.0

    def test_quiesce_settles_in_flight_moves(self):
        rig = Rig()
        sim = SimulationEngine(registry=rig.registry)
        rig.engine.executor.bind(sim)
        target = rig.non_holder()
        action = MigrationAction(
            MigrationKind.PROMOTE, rig.seg, target, None, "test"
        )
        rig.engine.executor.execute([action], at=0.0)
        assert rig.engine.executor.in_flight == 1
        assert rig.engine.quiesce(at=1.0) == 1
        assert rig.engine.executor.in_flight == 0
        assert target in rig.servable_nodes()
        sim.run(until=10.0)  # the queued completion event must be a no-op
        assert rig.engine.total_completed == 1


class TestDemandShiftScenario:
    """The ISSUE acceptance run, shared with `repro migrate` and the bench."""

    def test_migration_strictly_improves_post_shift_fetch_time(self):
        off, on = compare_demand_shift(seed=7)
        assert on.post_shift.mean_duration_s < off.post_shift.mean_duration_s
        assert on.post_shift.local_hits > 0 and off.post_shift.local_hits == 0

    def test_no_availability_or_redundancy_cost_mid_move(self):
        off, on = compare_demand_shift(seed=7)
        assert off.post_shift.availability == 1.0
        assert on.post_shift.availability == 1.0
        assert on.moves_completed > 0 and on.moves_failed == 0
        assert on.min_mid_move_redundancy is not None
        assert on.min_mid_move_redundancy >= 1.0

    def test_trust_swap_leaves_no_replicas_on_untrusted_hosts(self):
        off, on = compare_demand_shift(seed=7)
        assert off.untrusted_leftover > 0  # static placement strands them
        assert on.untrusted_leftover == 0
        assert on.evicted_author == off.evicted_author

    def test_scenario_is_deterministic(self):
        def digest():
            off, on = compare_demand_shift(seed=7)
            return (
                off.post_shift.mean_duration_s,
                on.post_shift.mean_duration_s,
                on.moves_completed,
                on.moves_failed,
                on.untrusted_leftover,
            )

        assert digest() == digest()
