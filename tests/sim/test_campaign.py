"""Tests for the seed-grid campaign runners (:mod:`repro.sim.campaign`).

The headline contract is determinism: for the same config and seed grid,
the multiprocessing runner must return reports **bit-for-bit equal** to
the serial runner's — same frozen ``ChaosReport`` tuples, same merged
aggregate. CI runs the 2-worker x 4-seed equivalence below as the
parallel-correctness gate.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.campaign import (
    CampaignConfig,
    merge_reports,
    run_campaign_parallel,
    run_campaign_serial,
    seed_grid,
)
from repro.sim.chaos import ChaosConfig


#: Small horizon keeps each seed sub-second while still injecting faults.
QUICK = CampaignConfig(chaos=ChaosConfig(horizon_s=600.0))


class TestSeedGrid:
    def test_deterministic(self):
        assert seed_grid(11, 4) == seed_grid(11, 4)

    def test_distinct_seeds(self):
        grid = seed_grid(11, 16)
        assert len(set(grid)) == 16

    def test_prefix_stable(self):
        """Growing a grid keeps the existing seeds (SeedSequence spawning)."""
        assert seed_grid(11, 8)[:4] == seed_grid(11, 4)

    def test_root_seed_matters(self):
        assert seed_grid(11, 4) != seed_grid(12, 4)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            seed_grid(11, 0)


class TestSerialRunner:
    def test_reports_align_with_seeds(self):
        seeds = seed_grid(11, 2)
        result = run_campaign_serial(QUICK, seeds)
        assert result.seeds == seeds
        assert len(result.reports) == 2
        assert result.workers == 1
        assert result.aggregate == merge_reports(result.reports)

    def test_deterministic_across_runs(self):
        seeds = seed_grid(11, 2)
        a = run_campaign_serial(QUICK, seeds)
        b = run_campaign_serial(QUICK, seeds)
        assert a.reports == b.reports
        assert a.aggregate == b.aggregate

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            run_campaign_serial(QUICK, [])


class TestParallelEquivalence:
    def test_parallel_bit_identical_to_serial(self):
        """The CI gate: 2 workers x 4 seeds, reports equal bit for bit."""
        seeds = seed_grid(11, 4)
        serial = run_campaign_serial(QUICK, seeds)
        parallel = run_campaign_parallel(QUICK, seeds, workers=2)
        assert parallel.reports == serial.reports
        assert parallel.aggregate == serial.aggregate
        assert parallel.seeds == serial.seeds
        assert parallel.workers == 2

    def test_workers_one_degrades_to_serial(self):
        seeds = seed_grid(11, 2)
        result = run_campaign_parallel(QUICK, seeds, workers=1)
        assert result.workers == 1
        assert result.reports == run_campaign_serial(QUICK, seeds).reports

    def test_workers_capped_by_seed_count(self):
        seeds = seed_grid(11, 1)
        result = run_campaign_parallel(QUICK, seeds, workers=4)
        assert result.workers == 1  # one seed -> serial path, no pool

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            run_campaign_parallel(QUICK, seed_grid(11, 2), workers=0)

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            run_campaign_parallel(QUICK, [], workers=2)


class TestMergeReports:
    def test_sums_and_pooled_availability(self):
        seeds = seed_grid(11, 3)
        result = run_campaign_serial(QUICK, seeds)
        agg = result.aggregate
        reports = result.reports
        assert agg.seeds == 3
        assert agg.requests == sum(r.requests for r in reports)
        assert agg.served == sum(r.served for r in reports)
        assert agg.failed == sum(r.failed for r in reports)
        assert agg.crashes == sum(r.crashes for r in reports)
        assert agg.repairs_created == sum(r.repairs_created for r in reports)
        denom = agg.served + agg.failed
        assert agg.availability == pytest.approx(
            agg.served / denom if denom else 1.0
        )
        assert agg.min_post_repair_redundancy == min(
            r.post_repair_redundancy for r in reports
        )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            merge_reports([])

    def test_lines_render(self):
        result = run_campaign_serial(QUICK, seed_grid(11, 2))
        text = "\n".join(result.lines())
        assert "2 campaigns" in text
        assert "pooled availability" in text


class TestCampaignConfig:
    def test_rejects_bad_ego_hops(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(ego_hops=0)
