"""Tests for the seed-grid campaign runners (:mod:`repro.sim.campaign`).

The headline contract is determinism: for the same config and seed grid,
the multiprocessing runner must return reports **bit-for-bit equal** to
the serial runner's — same frozen ``ChaosReport`` tuples, same merged
aggregate — under *both* ``fork`` and ``spawn`` start methods (spawn
workers get fresh interpreters and fresh ``PYTHONHASHSEED``s, which is
exactly the regime that exposes hash-order bugs). CI runs the 2-worker x
4-seed equivalence below as the parallel-correctness gate.
"""

from __future__ import annotations

import multiprocessing
from unittest import mock

import pytest

from repro.errors import ConfigurationError
from repro.sim.campaign import (
    CampaignConfig,
    CampaignExecutor,
    merge_reports,
    run_campaign_parallel,
    run_campaign_serial,
    seed_grid,
)
from repro.sim.chaos import ChaosConfig


#: Small horizon keeps each seed sub-second while still injecting faults.
QUICK = CampaignConfig(chaos=ChaosConfig(horizon_s=600.0))


def _start_methods():
    """Both start methods where the platform has them (fork is Unix-only)."""
    have = multiprocessing.get_all_start_methods()
    return [m for m in ("fork", "spawn") if m in have]


class TestSeedGrid:
    def test_deterministic(self):
        assert seed_grid(11, 4) == seed_grid(11, 4)

    def test_distinct_seeds(self):
        grid = seed_grid(11, 16)
        assert len(set(grid)) == 16

    def test_prefix_stable(self):
        """Growing a grid keeps the existing seeds (SeedSequence spawning)."""
        assert seed_grid(11, 8)[:4] == seed_grid(11, 4)

    def test_root_seed_matters(self):
        assert seed_grid(11, 4) != seed_grid(12, 4)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            seed_grid(11, 0)


class TestSerialRunner:
    def test_reports_align_with_seeds(self):
        seeds = seed_grid(11, 2)
        result = run_campaign_serial(QUICK, seeds)
        assert result.seeds == seeds
        assert len(result.reports) == 2
        assert result.workers == 1
        assert result.aggregate == merge_reports(result.reports)

    def test_deterministic_across_runs(self):
        seeds = seed_grid(11, 2)
        a = run_campaign_serial(QUICK, seeds)
        b = run_campaign_serial(QUICK, seeds)
        assert a.reports == b.reports
        assert a.aggregate == b.aggregate

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            run_campaign_serial(QUICK, [])


class TestParallelEquivalence:
    def test_parallel_bit_identical_to_serial(self):
        """The CI gate: 2 workers x 4 seeds, reports equal bit for bit."""
        seeds = seed_grid(11, 4)
        serial = run_campaign_serial(QUICK, seeds)
        parallel = run_campaign_parallel(QUICK, seeds, workers=2)
        assert parallel.reports == serial.reports
        assert parallel.aggregate == serial.aggregate
        assert parallel.seeds == serial.seeds
        assert parallel.workers == 2

    @pytest.mark.parametrize("method", _start_methods())
    def test_bit_identical_under_each_start_method(self, method):
        """Fork inherits the parent's hash seed; spawn does not. Reports
        must be bit-identical either way — this is the test that catches
        hash-order-dependent placement."""
        seeds = seed_grid(17, 2)
        serial = run_campaign_serial(QUICK, seeds)
        parallel = run_campaign_parallel(
            QUICK, seeds, workers=2, start_method=method
        )
        assert parallel.reports == serial.reports
        assert parallel.aggregate == serial.aggregate

    def test_workers_one_degrades_to_serial(self):
        seeds = seed_grid(11, 2)
        result = run_campaign_parallel(QUICK, seeds, workers=1)
        assert result.workers == 1
        assert result.reports == run_campaign_serial(QUICK, seeds).reports

    def test_workers_capped_by_seed_count(self):
        seeds = seed_grid(11, 1)
        result = run_campaign_parallel(QUICK, seeds, workers=4)
        assert result.workers == 1  # one seed -> serial path, no pool

    def test_degenerate_grids_never_create_a_pool(self):
        """workers=1 and single-seed grids must return the serial result
        directly — no Pool construction, no IPC, no report rebuilding."""
        seeds = seed_grid(11, 2)
        with mock.patch(
            "repro.sim.campaign.multiprocessing.get_context",
            side_effect=AssertionError("pool created for degenerate grid"),
        ):
            one_worker = run_campaign_parallel(QUICK, seeds, workers=1)
            one_seed = run_campaign_parallel(QUICK, seeds[:1], workers=4)
        assert one_worker.workers == 1
        assert one_seed.workers == 1

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            run_campaign_parallel(QUICK, seed_grid(11, 2), workers=0)

    def test_rejects_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            run_campaign_parallel(QUICK, [], workers=2)

    def test_rejects_duplicate_seeds(self):
        """Concatenated grids from related roots collide (prefix-stable
        spawning); the runner must refuse rather than double-count."""
        seeds = list(seed_grid(11, 4)) + list(seed_grid(11, 2))
        with pytest.raises(ConfigurationError, match="duplicate"):
            run_campaign_parallel(QUICK, seeds, workers=2)
        with pytest.raises(ConfigurationError, match="duplicate"):
            run_campaign_serial(QUICK, seeds)


class TestCampaignExecutor:
    def test_reuse_across_grids(self):
        """One executor, two grids: the pool persists and both results
        match their serial baselines bit for bit."""
        first = seed_grid(11, 2)
        second = seed_grid(23, 2)
        with CampaignExecutor(QUICK, workers=2) as ex:
            r1 = ex.run(first)
            assert ex.pool_started
            r2 = ex.run(second)
            assert ex.grids_run == 2
        assert ex.closed
        assert r1.reports == run_campaign_serial(QUICK, first).reports
        assert r2.reports == run_campaign_serial(QUICK, second).reports

    @pytest.mark.parametrize("method", _start_methods())
    def test_no_worker_rebuilds_after_warm(self, method):
        """The pool initializer must leave nothing for tasks to build:
        every task reports 0 post-warm trusted-graph builds, under fork
        (COW-inherited memo) and spawn (initializer prebuild) alike."""
        with CampaignExecutor(QUICK, workers=2, start_method=method) as ex:
            ex.run(seed_grid(11, 4))
            ex.run(seed_grid(23, 2))
            assert ex.worker_rebuilds == 0

    def test_workers_one_never_starts_pool(self):
        with CampaignExecutor(QUICK, workers=1) as ex:
            ex.warm()  # explicitly requested warm-up is still a no-op
            result = ex.run(seed_grid(11, 2))
            assert not ex.pool_started
        assert result.workers == 1

    def test_single_seed_grid_skips_pool(self):
        with CampaignExecutor(QUICK, workers=4) as ex:
            result = ex.run(seed_grid(11, 1))
            assert not ex.pool_started
        assert result.workers == 1

    def test_closed_executor_refuses_to_run(self):
        ex = CampaignExecutor(QUICK, workers=2)
        ex.close()
        assert ex.closed
        with pytest.raises(ConfigurationError, match="closed"):
            ex.run(seed_grid(11, 2))
        ex.close()  # idempotent

    def test_chunk_sizing(self):
        ex = CampaignExecutor(QUICK, workers=2)
        assert ex.chunk_size_for(8) == 2  # ceil(8 / (2 workers * 2))
        assert ex.chunk_size_for(1) == 1
        assert ex.chunk_size_for(9) == 3
        fixed = CampaignExecutor(QUICK, workers=2, chunk_size=5)
        assert fixed.chunk_size_for(100) == 5

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(QUICK, workers=0)
        with pytest.raises(ConfigurationError):
            CampaignExecutor(QUICK, workers=2, chunk_size=0)
        with pytest.raises(ConfigurationError):
            CampaignExecutor(QUICK, workers=2, start_method="no-such-method")


class TestMergeReports:
    def test_sums_and_pooled_availability(self):
        seeds = seed_grid(11, 3)
        result = run_campaign_serial(QUICK, seeds)
        agg = result.aggregate
        reports = result.reports
        assert agg.seeds == 3
        assert agg.requests == sum(r.requests for r in reports)
        assert agg.served == sum(r.served for r in reports)
        assert agg.failed == sum(r.failed for r in reports)
        assert agg.crashes == sum(r.crashes for r in reports)
        assert agg.repairs_created == sum(r.repairs_created for r in reports)
        denom = agg.served + agg.failed
        assert agg.availability == pytest.approx(
            agg.served / denom if denom else 1.0
        )
        assert agg.min_post_repair_redundancy == min(
            r.post_repair_redundancy for r in reports
        )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            merge_reports([])

    def test_lines_render(self):
        result = run_campaign_serial(QUICK, seed_grid(11, 2))
        text = "\n".join(result.lines())
        assert "2 campaigns" in text
        assert "pooled availability" in text


class TestCampaignConfig:
    def test_rejects_bad_ego_hops(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(ego_hops=0)
