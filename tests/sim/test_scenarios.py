"""Community-split scenario tests (repro.sim.scenarios).

The scenario is the partition-tolerance acceptance harness: community
B's core is cut off from its own site's coordinator while most replicas
of the shared dataset live in community A, so the majority must keep
serving (degraded where needed), writes must park in the handoff log,
and the post-heal reconciliation must converge on the never-partitioned
oracle.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.scenarios import (
    CommunitySplitConfig,
    compare_community_split,
    run_community_split,
)


@pytest.fixture(scope="module")
def pair():
    """(off, on): the oracle run and the partitioned run, same seed."""
    return compare_community_split(seed=7)


class TestConfig:
    def test_defaults_valid(self):
        CommunitySplitConfig()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CommunitySplitConfig(segment_bytes=0)
        with pytest.raises(ConfigurationError):
            CommunitySplitConfig(tick_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            CommunitySplitConfig(partition_at_s=700.0)  # after heal_at_s
        with pytest.raises(ConfigurationError):
            CommunitySplitConfig(heal_at_s=1000.0)  # after horizon_s
        with pytest.raises(ConfigurationError):
            CommunitySplitConfig(shared_replicas=3)


class TestOracle:
    """The partitions=False run is the never-partitioned baseline."""

    def test_nothing_degrades_without_a_partition(self, pair):
        off, _ = pair
        assert not off.partitions_enabled
        assert off.degraded_serves == 0
        assert off.handoff_queued == 0
        assert off.divergence_after_heal == 0
        assert off.final_lost == 0
        for phase in (off.pre, off.minority, off.majority, off.post):
            assert phase.availability == 1.0

    def test_oracle_serves_every_dataset(self, pair):
        off, _ = pair
        assert off.datasets_converged == 3
        assert off.late_dataset_served


class TestPartitionedRun:
    def test_majority_stays_servable(self, pair):
        """The headline acceptance gate: group locality keeps the
        majority side ≥ 0.9 available right through the split."""
        _, on = pair
        assert on.partitions_enabled
        assert on.majority.accesses > 0
        assert on.majority.availability >= 0.9

    def test_minority_pays_for_the_cut(self, pair):
        _, on = pair
        assert on.minority.accesses > 0
        assert on.minority.availability < on.majority.availability

    def test_degraded_serves_counted(self, pair):
        _, on = pair
        assert on.degraded_serves > 0

    def test_writes_park_and_replay(self, pair):
        _, on = pair
        assert on.handoff_queued > 0
        assert on.handoff_replayed == on.handoff_queued
        assert on.late_dataset_served

    def test_convergence_matches_oracle(self, pair):
        """Post-heal state must be indistinguishable from never having
        partitioned: zero divergence, same datasets, nothing lost."""
        off, on = pair
        assert on.divergence_after_heal == 0
        assert on.datasets_converged == off.datasets_converged == 3
        assert on.final_lost == 0
        assert on.post.availability == 1.0

    def test_whole_phases_match_oracle(self, pair):
        """Before the split both runs are bit-identical deployments."""
        off, on = pair
        assert on.pre == off.pre


class TestDeterminism:
    def test_partitioned_run_reproduces(self):
        a = run_community_split(partitions=True, seed=7)
        b = run_community_split(partitions=True, seed=7)
        assert a == b
