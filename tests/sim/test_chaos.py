"""Chaos campaign tests (repro.sim.chaos)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId
from repro.obs import Registry
from repro.scdn import SCDN
from repro.sim.chaos import ChaosConfig, ChaosReport, run_chaos_campaign
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus

from ..conftest import pub


def community_graph():
    pubs = [
        pub("p1", 2009, "alice", "bob", "carol"),
        pub("p2", 2010, "carol", "dave", "erin"),
        pub("p3", 2010, "alice", "bob"),
        pub("p4", 2010, "dave", "erin"),
        pub("p5", 2011, "bob", "dave"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


SMALL = ChaosConfig(
    horizon_s=600.0,
    members=5,
    datasets=2,
    segments_per_dataset=1,
    dataset_size_bytes=100_000,
    n_replicas=2,
    crash_rate_per_node_s=1e-4,
    outage_rate_per_node_s=1e-3,
    outage_mean_duration_s=60.0,
    slowlink_rate_per_node_s=1e-3,
    slowlink_mean_duration_s=60.0,
    audit_interval_s=120.0,
)


def fresh_net(seed=1):
    return SCDN(community_graph(), seed=seed, registry=Registry())


class TestConfig:
    def test_defaults_valid(self):
        ChaosConfig()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(members=1)
        with pytest.raises(ConfigurationError):
            ChaosConfig(crash_rate_per_node_s=-1.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(slowlink_factor=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(outage_mean_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(repair_delay_s=-1.0)

    def test_default_request_interval_derived(self):
        cfg = ChaosConfig(horizon_s=1000.0, members=10)
        assert cfg.effective_request_interval_s == pytest.approx(5.0)
        cfg = ChaosConfig(request_interval_s=7.0)
        assert cfg.effective_request_interval_s == 7.0


class TestCampaign:
    def test_completes_without_unhandled_exceptions(self):
        report = run_chaos_campaign(fresh_net(), SMALL, seed=7)
        assert isinstance(report, ChaosReport)
        assert report.unhandled_exceptions == 0
        assert report.members == 5 and report.datasets == 2
        assert report.requests == report.served + report.failed
        assert 0.0 <= report.availability <= 1.0
        assert 0.0 <= report.post_repair_redundancy <= 1.0

    def test_deterministic_under_fixed_seeds(self):
        a = run_chaos_campaign(fresh_net(seed=3), SMALL, seed=11)
        b = run_chaos_campaign(fresh_net(seed=3), SMALL, seed=11)
        assert a == b

    def test_different_seed_changes_schedule(self):
        # higher rates so schedules almost surely differ
        cfg = ChaosConfig(
            horizon_s=600.0,
            members=5,
            datasets=2,
            segments_per_dataset=1,
            dataset_size_bytes=100_000,
            n_replicas=2,
            outage_rate_per_node_s=5e-3,
            outage_mean_duration_s=30.0,
        )
        a = run_chaos_campaign(fresh_net(), cfg, seed=1)
        b = run_chaos_campaign(fresh_net(), cfg, seed=2)
        assert a != b

    def test_metrics_land_in_registry(self):
        net = fresh_net()
        run_chaos_campaign(net, SMALL, seed=7)
        snap = net.obs_snapshot()
        for counter in (
            "chaos.requests",
            "chaos.served",
            "chaos.failed",
            "chaos.denied",
            "alloc.resolve.failover",
        ):
            assert counter in snap["counters"]
        assert "chaos.repair.latency_s" in snap["histograms"]
        assert "transfer.retry.backoff_s" in snap["histograms"]
        assert "chaos.availability" in snap["gauges"]
        assert snap["counters"]["chaos.requests"]["value"] > 0

    def test_report_lines_render(self):
        report = run_chaos_campaign(fresh_net(), SMALL, seed=7)
        text = "\n".join(report.lines())
        assert "availability=" in text
        assert "post_repair_redundancy=" in text

    def test_rejects_populated_network(self):
        net = fresh_net()
        net.join(AuthorId("alice"))
        with pytest.raises(ConfigurationError, match="no members"):
            run_chaos_campaign(net, SMALL, seed=7)


CORRUPT = ChaosConfig(
    horizon_s=600.0,
    members=5,
    datasets=2,
    segments_per_dataset=1,
    dataset_size_bytes=100_000,
    n_replicas=2,
    crash_rate_per_node_s=0.0,
    outage_rate_per_node_s=1e-3,
    outage_mean_duration_s=60.0,
    slowlink_rate_per_node_s=0.0,
    audit_interval_s=120.0,
    corruption_rate_per_node_s=4e-3,
    scrub_interval_s=120.0,
)


class TestCorruptionCampaigns:
    def test_scrubber_off_is_bitfor_bit_identical_without_corruption(self):
        """Regression gate: with corruption disabled, the scrubber (on or
        off) must not perturb the campaign at all — same seed, same
        ChaosReport, field for field."""
        import dataclasses

        on = run_chaos_campaign(
            fresh_net(), dataclasses.replace(SMALL, scrub_enabled=True), seed=7
        )
        off = run_chaos_campaign(
            fresh_net(), dataclasses.replace(SMALL, scrub_enabled=False), seed=7
        )
        assert on == off
        assert on.corruptions == 0 and on.quarantined == 0

    def test_scrubber_contains_bit_rot(self):
        """With corruption on, the scrubber must (a) leave zero corrupt
        servable replicas after the final repair audit and (b) serve
        strictly fewer corrupt reads than the same campaign without it."""
        import dataclasses

        on = run_chaos_campaign(fresh_net(), CORRUPT, seed=7)
        off = run_chaos_campaign(
            fresh_net(),
            dataclasses.replace(CORRUPT, scrub_enabled=False),
            seed=7,
        )
        assert on.corruptions > 0
        assert on.unhandled_exceptions == 0
        assert on.corrupt_servable_after_repair == 0
        assert off.corrupt_servable_after_repair > 0  # rot festers unscrubbed
        assert on.corrupt_reads_served < off.corrupt_reads_served
        assert on.quarantined > 0
        assert on.mean_time_to_detect_s > 0.0
        # without a scrubber nothing detects, nothing quarantines
        assert off.quarantined == 0 and off.undetected_at_horizon == off.corruptions

    def test_corruption_campaign_deterministic(self):
        a = run_chaos_campaign(fresh_net(), CORRUPT, seed=7)
        b = run_chaos_campaign(fresh_net(), CORRUPT, seed=7)
        assert a == b

    def test_integrity_metrics_land_in_registry(self):
        net = fresh_net()
        run_chaos_campaign(net, CORRUPT, seed=7)
        snap = net.obs_snapshot()
        assert snap["counters"]["integrity.scrub.runs"]["value"] > 0
        assert snap["counters"]["integrity.scrub.corrupt_found"]["value"] > 0
        assert snap["counters"]["alloc.quarantine.replicas"]["value"] > 0
        assert "integrity.scrub.detect_latency_s" in snap["histograms"]

    def test_report_lines_include_integrity(self):
        report = run_chaos_campaign(fresh_net(), CORRUPT, seed=7)
        text = "\n".join(report.lines())
        assert "corrupt reads served" in text
        assert "corrupt_servable_after_repair=" in text

    def test_corruption_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(corruption_rate_per_node_s=-1.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(scrub_interval_s=0.0)


# ----------------------------------------------------------------------
# partition campaigns
# ----------------------------------------------------------------------

PARTITION = ChaosConfig(
    horizon_s=1800.0,
    members=5,
    datasets=2,
    segments_per_dataset=1,
    dataset_size_bytes=100_000,
    n_replicas=2,
    crash_rate_per_node_s=0.0,
    outage_rate_per_node_s=0.0,
    slowlink_rate_per_node_s=0.0,
    audit_interval_s=120.0,
    partition_rate_s=2e-3,
    partition_mean_duration_s=120.0,
)

#: new-in-this-layer report fields and their rate-0 values — a
#: partition-free campaign must not even show the feature existing
_PARTITION_DEFAULTS = {
    "partitions": 0,
    "degraded_serves": 0,
    "degraded_serve_ratio": 0.0,
    "minority_acceptance": 1.0,
    "majority_acceptance": 1.0,
    "time_to_reconverge_s": 0.0,
    "divergence_after_heal": 0,
}


class TestPartitionCampaigns:
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_rate_zero_bit_identical_to_pre_partition_baseline(self, n_shards):
        """The frozen PR-7 gate: with partitions off, a campaign on the
        partition-aware stack reproduces the pre-partition report bit for
        bit, and every new field sits at its inert default."""
        import json
        from pathlib import Path

        from repro.scdn import SCDNConfig

        baseline = json.loads(
            (Path(__file__).parent.parent / "data" / "chaos_baseline_pr7.json")
            .read_text()
        )[str(n_shards)]
        net = SCDN(
            community_graph(),
            config=SCDNConfig(shards=n_shards),
            seed=1,
            registry=Registry(),
        )
        report = run_chaos_campaign(net, SMALL, seed=7).to_dict()
        assert {k: report[k] for k in baseline} == baseline
        assert {k: report[k] for k in _PARTITION_DEFAULTS} == _PARTITION_DEFAULTS

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_partitions_inject_and_reconverge(self, n_shards):
        from repro.scdn import SCDNConfig

        net = SCDN(
            community_graph(),
            config=SCDNConfig(shards=n_shards),
            seed=1,
            registry=Registry(),
        )
        report = run_chaos_campaign(net, PARTITION, seed=7)
        assert report.partitions > 0
        assert report.unhandled_exceptions == 0
        assert report.divergence_after_heal == 0
        assert not net.network.partitioned  # campaign always ends healed
        assert 0.0 <= report.minority_acceptance <= 1.0
        assert 0.0 <= report.majority_acceptance <= 1.0
        assert report.time_to_reconverge_s >= 0.0

    def test_partition_campaign_deterministic(self):
        a = run_chaos_campaign(fresh_net(), PARTITION, seed=7)
        b = run_chaos_campaign(fresh_net(), PARTITION, seed=7)
        assert a == b

    def test_report_lines_include_partitions(self):
        report = run_chaos_campaign(fresh_net(), PARTITION, seed=7)
        text = "\n".join(report.lines())
        assert "partitions:" in text
        assert "divergence_after_heal=" in text

    def test_partition_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(partition_rate_s=-1.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(partition_mean_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(partition_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(partition_fraction=0.6)


#: peer-tier report fields and their tier-off values — a peer-off
#: campaign must not even show the feature existing
_PEER_DEFAULTS = {
    "peers_admitted": 0,
    "peer_serves": 0,
    "peer_offload_ratio": 0.0,
    "peer_leases_expired": 0,
    "peer_leaves": 0,
}


def _flash_peer_net(seed=1):
    from repro.scdn import SCDNConfig
    from repro.sim.scenarios import _flash_network, flash_crowd_graph

    graph = flash_crowd_graph()
    return SCDN(
        graph,
        config=SCDNConfig(proximity_hops=6),
        seed=seed,
        registry=Registry(),
        network=_flash_network(graph),
    )


_FLASH_PEERS = ChaosConfig(
    horizon_s=1800.0,
    members=13,
    datasets=2,
    segments_per_dataset=2,
    dataset_size_bytes=10_000_000,
    n_replicas=3,
    member_capacity_bytes=20_000_000,
    publish_before_join=True,
    peer_tier=True,
    peer_leave_rate_s=0.002,
)


class TestPeerCampaigns:
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_peer_off_bit_identical_to_pre_peer_baseline(self, n_shards):
        """The frozen PR-7 gate, re-run on the peer-aware stack: with the
        tier off, the registry is never built, resolve consults no peers,
        churn draws nothing, and the report reproduces the pre-peer
        baseline bit for bit with every new field at its inert default."""
        import json
        from pathlib import Path

        from repro.scdn import SCDNConfig

        baseline = json.loads(
            (Path(__file__).parent.parent / "data" / "chaos_baseline_pr7.json")
            .read_text()
        )[str(n_shards)]
        net = SCDN(
            community_graph(),
            config=SCDNConfig(shards=n_shards),
            seed=1,
            registry=Registry(),
        )
        report = run_chaos_campaign(net, SMALL, seed=7).to_dict()
        assert {k: report[k] for k in baseline} == baseline
        assert {k: report[k] for k in _PEER_DEFAULTS} == _PEER_DEFAULTS

    def test_peer_campaign_admits_serves_and_churns(self):
        """Over the flash-crowd deployment (replicas pinned on owners,
        tight member caches) the tier admits leases, serves reads, and
        loses peers to churn — while the campaign stays fully available
        and integrity-clean."""
        report = run_chaos_campaign(_flash_peer_net(), _FLASH_PEERS, seed=7)
        assert report.peers_admitted > 0
        assert report.peer_serves > 0
        assert report.peer_offload_ratio > 0.0
        assert report.peer_leaves > 0
        assert report.unhandled_exceptions == 0
        assert report.corrupt_servable_after_repair == 0

    def test_peer_campaign_deterministic(self):
        a = run_chaos_campaign(_flash_peer_net(), _FLASH_PEERS, seed=7)
        b = run_chaos_campaign(_flash_peer_net(), _FLASH_PEERS, seed=7)
        assert a == b

    def test_peer_churn_rate_zero_draws_nothing(self):
        """Enabling the tier without churn must not perturb the injector
        stream: rate 0 schedules nothing, and with node failures also
        silenced no leave is ever recorded (crash/outage leaves are the
        only other source)."""
        from dataclasses import replace

        quiet = replace(
            _FLASH_PEERS,
            crash_rate_per_node_s=0.0,
            outage_rate_per_node_s=0.0,
            peer_leave_rate_s=0.0,
        )
        a = run_chaos_campaign(_flash_peer_net(), quiet, seed=7)
        b = run_chaos_campaign(_flash_peer_net(), quiet, seed=7)
        assert a == b
        assert a.peer_leaves == 0

    def test_report_lines_include_peer_tier(self):
        report = run_chaos_campaign(_flash_peer_net(), _FLASH_PEERS, seed=7)
        text = "\n".join(report.lines())
        assert "peer tier:" in text
        assert "offload=" in text

    def test_publish_before_join_pins_replicas_to_owners(self):
        """The flash recipe's precondition: with publish_before_join only
        the owners hold repository replicas at campaign end (repair may
        move some after owner crashes, so assert on the quiet variant)."""
        from dataclasses import replace

        net = _flash_peer_net()
        calm = replace(
            _FLASH_PEERS,
            crash_rate_per_node_s=0.0,
            outage_rate_per_node_s=0.0,
            slowlink_rate_per_node_s=0.0,
            peer_leave_rate_s=0.0,
        )
        run_chaos_campaign(net, calm, seed=7)
        owners = {"crowd-1", "crowd-2", "crowd-3"}
        holders = {
            str(net.server.author_of(r.node_id))
            for r in net.server.catalog.iter_replicas()
        }
        assert holders <= owners

    def test_peer_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(peer_lease_ttl_s=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(peer_cache_segments=-1)
        with pytest.raises(ConfigurationError):
            ChaosConfig(peer_max_concurrent_serves=0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(peer_leave_rate_s=-1.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(member_capacity_bytes=0)
