"""Migration knobs of the chaos harness (repro.sim.chaos)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.obs import Registry
from repro.scdn import SCDN
from repro.sim.chaos import ChaosConfig, run_chaos_campaign
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus

from ..conftest import pub


def community_graph():
    pubs = [
        pub("p1", 2009, "alice", "bob", "carol"),
        pub("p2", 2010, "carol", "dave", "erin"),
        pub("p3", 2010, "alice", "bob"),
        pub("p4", 2010, "dave", "erin"),
        pub("p5", 2011, "bob", "dave"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


SMALL = ChaosConfig(
    horizon_s=600.0,
    members=5,
    datasets=2,
    segments_per_dataset=1,
    dataset_size_bytes=100_000,
    n_replicas=2,
    crash_rate_per_node_s=0.0,
    outage_rate_per_node_s=1e-3,
    outage_mean_duration_s=60.0,
    slowlink_rate_per_node_s=0.0,
    audit_interval_s=120.0,
)


def fresh_net(seed=1):
    return SCDN(community_graph(), seed=seed, registry=Registry())


class TestKnobs:
    def test_migration_off_by_default(self):
        assert ChaosConfig().migration_enabled is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(migration_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(migration_hot_rate_per_s=-1.0)


class TestCampaign:
    def test_disabled_report_keeps_default_migration_fields(self):
        report = run_chaos_campaign(fresh_net(), SMALL, seed=7)
        assert report.migration_moves == 0
        assert report.migration_failed_moves == 0
        assert report.availability_during_migration == 1.0
        assert report.min_mid_move_redundancy == 1.0
        assert "migration: 0 moves" in "\n".join(report.lines())

    def test_enabled_campaign_reports_migration_outcomes(self):
        cfg = dataclasses.replace(
            SMALL,
            migration_enabled=True,
            migration_interval_s=120.0,
            migration_hot_rate_per_s=1e-4,
        )
        report = run_chaos_campaign(fresh_net(), cfg, seed=7)
        assert report.unhandled_exceptions == 0
        assert report.migration_failed_moves <= report.migration_moves
        assert 0.0 <= report.availability_during_migration <= 1.0

    def test_enabling_migration_leaves_disabled_runs_untouched(self):
        # bit-for-bit: the enabled code path draws its RNG last, so a
        # disabled campaign is unaffected by the feature existing
        a = run_chaos_campaign(fresh_net(), SMALL, seed=11)
        b = run_chaos_campaign(
            fresh_net(), dataclasses.replace(SMALL, migration_enabled=False), seed=11
        )
        assert a == b

    def test_enabled_campaign_is_deterministic(self):
        cfg = dataclasses.replace(
            SMALL, migration_enabled=True, migration_interval_s=120.0
        )
        a = run_chaos_campaign(fresh_net(), cfg, seed=13)
        b = run_chaos_campaign(fresh_net(), cfg, seed=13)
        assert a == b
