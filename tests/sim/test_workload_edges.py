"""SocialWorkloadGenerator edge cases (repro.sim.workload).

Degenerate universes the main workload tests never visit: no datasets,
no users, a single dataset, and users with zero social interest in every
owner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ids import AuthorId, DatasetId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.sim.workload import SocialWorkloadGenerator, WorkloadConfig

from ..conftest import pub


@pytest.fixture
def split_graph():
    """Two disconnected components: {a, b} and {c, d}."""
    pubs = [pub("p1", 2010, "a", "b"), pub("p2", 2010, "c", "d")]
    return build_coauthorship_graph(Corpus(pubs))


OWNERS = {DatasetId("only"): AuthorId("a")}


class TestDegenerateUniverses:
    def test_empty_dataset_universe_rejected(self, split_graph):
        with pytest.raises(WorkloadError, match="need at least one dataset"):
            SocialWorkloadGenerator(split_graph, {})

    def test_empty_user_list_rejected(self, split_graph):
        gen = SocialWorkloadGenerator(split_graph, OWNERS, seed=1)
        with pytest.raises(WorkloadError, match="no users"):
            gen.generate(users=[])

    def test_users_default_to_every_graph_node(self, split_graph):
        cfg = WorkloadConfig(mean_requests_per_user=20.0)
        gen = SocialWorkloadGenerator(split_graph, OWNERS, config=cfg, seed=1)
        requesters = {r.requester for r in gen.generate()}
        assert requesters == set(split_graph.nodes())


class TestSingleDataset:
    def test_every_request_targets_the_only_dataset(self, split_graph):
        cfg = WorkloadConfig(mean_requests_per_user=10.0)
        gen = SocialWorkloadGenerator(split_graph, OWNERS, config=cfg, seed=2)
        requests = gen.generate()
        assert requests
        assert {r.dataset_id for r in requests} == {DatasetId("only")}
        assert requests == sorted(requests, key=lambda r: (r.time, r.requester))
        assert all(0.0 <= r.time <= cfg.duration_s for r in requests)


class TestZeroInterestFallback:
    def test_unreachable_user_falls_back_to_popularity(self, split_graph):
        # 'c' is disconnected from every owner and unreachable datasets
        # carry zero weight: interest degenerates to pure popularity
        # instead of an all-zero (un-normalizable) vector
        cfg = WorkloadConfig(unreachable_weight=0.0)
        gen = SocialWorkloadGenerator(split_graph, OWNERS, config=cfg, seed=3)
        weights = gen._interest_weights(AuthorId("c"))
        np.testing.assert_allclose(weights, gen._popularity)

    def test_unreachable_users_still_generate_requests(self, split_graph):
        owners = {
            DatasetId("d1"): AuthorId("a"),
            DatasetId("d2"): AuthorId("b"),
        }
        cfg = WorkloadConfig(mean_requests_per_user=20.0, unreachable_weight=0.0)
        gen = SocialWorkloadGenerator(split_graph, owners, config=cfg, seed=4)
        requests = gen.generate(users=[AuthorId("c"), AuthorId("d")])
        assert requests
        assert {r.dataset_id for r in requests} <= set(owners)

    def test_reachable_user_prefers_the_near_owner(self, split_graph):
        owners = {
            DatasetId("near"): AuthorId("b"),
            DatasetId("far"): AuthorId("c"),
        }
        cfg = WorkloadConfig(zipf_exponent=0.0, unreachable_weight=0.0)
        gen = SocialWorkloadGenerator(split_graph, owners, config=cfg, seed=5)
        weights = gen._interest_weights(AuthorId("a"))
        by_ds = dict(zip(sorted(owners), weights))
        assert by_ds[DatasetId("near")] > by_ds[DatasetId("far")] == 0.0


class TestDeterminism:
    def test_same_seed_same_stream(self, split_graph):
        def stream():
            gen = SocialWorkloadGenerator(split_graph, OWNERS, seed=9)
            return gen.generate()

        assert stream() == stream()
