"""Unit tests for repro.sim.network."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import NodeId
from repro.sim.network import GeoPoint, LinkSpec, NetworkModel, random_geography


class TestGeoPoint:
    def test_distance_zero_to_self(self):
        p = GeoPoint(41.9, -87.6)
        assert p.distance_km(p) == pytest.approx(0.0)

    def test_known_distance_chicago_karlsruhe(self):
        chi = GeoPoint(41.88, -87.63)
        ka = GeoPoint(49.01, 8.4)
        d = chi.distance_km(ka)
        assert 7000 < d < 7500  # ~7220 km

    def test_symmetry(self):
        a, b = GeoPoint(10, 20), GeoPoint(-30, 50)
        assert a.distance_km(b) == pytest.approx(b.distance_km(a))

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            GeoPoint(91, 0)
        with pytest.raises(ConfigurationError):
            GeoPoint(0, 181)


class TestLinkSpec:
    def test_transfer_time(self):
        link = LinkSpec(latency_s=0.1, bandwidth_bps=8e6)
        assert link.transfer_time(1_000_000) == pytest.approx(1.1)

    def test_zero_bytes_is_latency_only(self):
        link = LinkSpec(latency_s=0.1, bandwidth_bps=8e6)
        assert link.transfer_time(0) == pytest.approx(0.1)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(0.1, 1e6).transfer_time(-1)


class TestNetworkModel:
    @pytest.fixture
    def net(self):
        n = NetworkModel(base_latency_s=0.01, default_bandwidth_bps=100e6)
        n.add_node(NodeId("a"), GeoPoint(0, 0))
        n.add_node(NodeId("b"), GeoPoint(0, 90), bandwidth_bps=10e6)
        return n

    def test_membership(self, net):
        assert NodeId("a") in net
        assert NodeId("z") not in net

    def test_duplicate_node_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.add_node(NodeId("a"), GeoPoint(1, 1))

    def test_bandwidth_default_and_explicit(self, net):
        assert net.bandwidth(NodeId("a")) == 100e6
        assert net.bandwidth(NodeId("b")) == 10e6

    def test_link_latency_grows_with_distance(self, net):
        net.add_node(NodeId("near"), GeoPoint(0, 1))
        far = net.link(NodeId("a"), NodeId("b")).latency_s
        near = net.link(NodeId("a"), NodeId("near")).latency_s
        assert far > near > net.base_latency_s

    def test_link_bandwidth_is_min(self, net):
        assert net.link(NodeId("a"), NodeId("b")).bandwidth_bps == 10e6

    def test_self_link(self, net):
        link = net.link(NodeId("a"), NodeId("a"))
        assert link.latency_s == 0.0
        assert link.bandwidth_bps == 100e6

    def test_unknown_node_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.link(NodeId("a"), NodeId("z"))
        with pytest.raises(ConfigurationError):
            net.position(NodeId("z"))

    def test_mean_pairwise_latency(self, net):
        assert net.mean_pairwise_latency() > 0

    def test_mean_pairwise_single_node(self):
        n = NetworkModel()
        n.add_node(NodeId("solo"), GeoPoint(0, 0))
        assert n.mean_pairwise_latency() == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(base_latency_s=-1)
        with pytest.raises(ConfigurationError):
            NetworkModel(default_bandwidth_bps=0)


class TestRandomGeography:
    def test_places_all_nodes(self):
        ids = [NodeId(f"n{i}") for i in range(20)]
        net = random_geography(ids, seed=0)
        assert all(n in net for n in ids)

    def test_deterministic(self):
        ids = [NodeId(f"n{i}") for i in range(5)]
        a = random_geography(ids, seed=3)
        b = random_geography(ids, seed=3)
        for n in ids:
            assert a.position(n) == b.position(n)
            assert a.bandwidth(n) == b.bandwidth(n)

    def test_clustered_positions(self):
        # nodes in the same cluster are close; distinct clusters exist
        ids = [NodeId(f"n{i}") for i in range(50)]
        net = random_geography(ids, seed=1, n_clusters=3, cluster_spread_deg=0.5)
        lats = sorted(net.position(n).lat for n in ids)
        gaps = [b - a for a, b in zip(lats, lats[1:])]
        assert max(gaps) > 2.0  # at least two well-separated clusters

    def test_invalid_clusters(self):
        with pytest.raises(ConfigurationError):
            random_geography([NodeId("a")], n_clusters=0)


class TestDegradation:
    def test_degrade_and_restore(self):
        n = NetworkModel(default_bandwidth_bps=100e6)
        n.add_node(NodeId("a"), GeoPoint(0, 0))
        n.degrade(NodeId("a"), 0.1)
        assert n.bandwidth(NodeId("a")) == pytest.approx(10e6)
        n.restore(NodeId("a"))
        assert n.bandwidth(NodeId("a")) == 100e6

    def test_degradation_affects_links(self):
        n = NetworkModel(default_bandwidth_bps=100e6)
        n.add_node(NodeId("a"), GeoPoint(0, 0))
        n.add_node(NodeId("b"), GeoPoint(0, 1))
        before = n.link(NodeId("a"), NodeId("b")).bandwidth_bps
        n.degrade(NodeId("b"), 0.5)
        after = n.link(NodeId("a"), NodeId("b")).bandwidth_bps
        assert after == pytest.approx(before * 0.5)

    def test_invalid_factor(self):
        n = NetworkModel()
        n.add_node(NodeId("a"), GeoPoint(0, 0))
        with pytest.raises(ConfigurationError):
            n.degrade(NodeId("a"), 0.0)
        with pytest.raises(ConfigurationError):
            n.degrade(NodeId("a"), 1.5)

    def test_unknown_node_rejected(self):
        n = NetworkModel()
        with pytest.raises(ConfigurationError):
            n.degrade(NodeId("zz"), 0.5)
        with pytest.raises(ConfigurationError):
            n.restore(NodeId("zz"))

    def test_restore_idempotent(self):
        n = NetworkModel()
        n.add_node(NodeId("a"), GeoPoint(0, 0))
        n.restore(NodeId("a"))  # no degradation set: no error


class TestPartition:
    def _net(self):
        n = NetworkModel()
        for name in ("a", "b", "c", "d"):
            n.add_node(NodeId(name), GeoPoint(0, 0))
        return n

    def test_whole_network_fully_reachable(self):
        n = self._net()
        assert not n.partitioned
        assert n.reachable(NodeId("a"), NodeId("d"))

    def test_partition_separates_groups(self):
        n = self._net()
        n.partition([[NodeId("a"), NodeId("b")], [NodeId("c")]])
        assert n.partitioned
        assert n.reachable(NodeId("a"), NodeId("b"))
        assert not n.reachable(NodeId("a"), NodeId("c"))
        assert not n.reachable(NodeId("b"), NodeId("c"))

    def test_unlisted_nodes_form_rest_group(self):
        n = self._net()
        n.add_node(NodeId("e"), GeoPoint(0, 0))
        n.partition([[NodeId("a")], [NodeId("b")]])
        # c, d, e are unlisted: they reach each other, no listed node
        assert n.reachable(NodeId("c"), NodeId("d"))
        assert n.reachable(NodeId("c"), NodeId("e"))
        assert not n.reachable(NodeId("c"), NodeId("a"))
        assert not n.reachable(NodeId("e"), NodeId("b"))

    def test_self_always_reachable(self):
        n = self._net()
        n.partition([[NodeId("a")], [NodeId("b")]])
        for name in ("a", "b", "c"):
            assert n.reachable(NodeId(name), NodeId(name))

    def test_unregistered_nodes_never_raise(self):
        n = self._net()
        n.partition([[NodeId("a")], [NodeId("b")]])
        # unregistered ids land in the implicit rest group
        assert n.reachable(NodeId("zz"), NodeId("c"))
        assert not n.reachable(NodeId("zz"), NodeId("a"))

    def test_link_raises_unreachable_across_boundary(self):
        from repro.errors import TransferError, UnreachableError

        n = self._net()
        n.partition([[NodeId("a"), NodeId("b")], [NodeId("c"), NodeId("d")]])
        with pytest.raises(UnreachableError):
            n.link(NodeId("a"), NodeId("c"))
        # failover paths catch TransferError: the subclass must be one
        assert issubclass(UnreachableError, TransferError)
        n.link(NodeId("a"), NodeId("b"))  # same side: still characterized

    def test_heal_restores_and_is_idempotent(self):
        n = self._net()
        n.partition([[NodeId("a")], [NodeId("b")]])
        n.heal()
        assert not n.partitioned
        assert n.reachable(NodeId("a"), NodeId("b"))
        n.link(NodeId("a"), NodeId("b"))
        n.heal()  # no active partition: no error

    def test_second_partition_rejected_until_heal(self):
        n = self._net()
        n.partition([[NodeId("a")], [NodeId("b")]])
        with pytest.raises(ConfigurationError):
            n.partition([[NodeId("c")], [NodeId("d")]])
        n.heal()
        n.partition([[NodeId("c")], [NodeId("d")]])

    def test_validation(self):
        n = self._net()
        with pytest.raises(ConfigurationError):
            n.partition([[NodeId("zz")]])
        with pytest.raises(ConfigurationError):
            n.partition([[NodeId("a")], [NodeId("a")]])
        with pytest.raises(ConfigurationError):
            n.partition([[], []])
