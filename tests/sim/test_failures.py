"""Unit tests for repro.sim.failures."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import NodeId
from repro.sim.engine import SimulationEngine
from repro.sim.failures import FailureInjector

NODES = [NodeId(f"n{i}") for i in range(5)]


@pytest.fixture
def rig():
    engine = SimulationEngine()
    injector = FailureInjector(engine, NODES, seed=0)
    return engine, injector


class TestDirectInjection:
    def test_crash_fires_and_is_permanent(self, rig):
        engine, injector = rig
        events = []
        injector.on_failure(events.append)
        injector.crash(NODES[0], at=5.0)
        engine.run()
        assert len(events) == 1
        assert events[0].kind == "crash" and events[0].time == 5.0
        assert not injector.is_alive(NODES[0])
        assert injector.crashed_nodes() == {NODES[0]}

    def test_double_crash_fires_once(self, rig):
        engine, injector = rig
        events = []
        injector.on_failure(events.append)
        injector.crash(NODES[0], at=5.0)
        injector.crash(NODES[0], at=6.0)
        engine.run()
        assert len(events) == 1

    def test_outage_start_end(self, rig):
        engine, injector = rig
        timeline = []
        injector.on_failure(lambda e: timeline.append((e.time, e.kind)))
        injector.outage(NODES[1], start=10.0, duration=5.0)
        engine.run(until=12.0)
        assert not injector.is_alive(NODES[1])
        engine.run()
        assert injector.is_alive(NODES[1])
        assert timeline == [(10.0, "outage-start"), (15.0, "outage-end")]

    def test_outage_after_crash_ignored(self, rig):
        engine, injector = rig
        injector.crash(NODES[0], at=1.0)
        injector.outage(NODES[0], start=2.0, duration=1.0)
        engine.run()
        assert [e.kind for e in injector.history] == ["crash"]

    def test_unknown_node_rejected(self, rig):
        _, injector = rig
        with pytest.raises(ConfigurationError):
            injector.crash(NodeId("zz"), at=1.0)
        with pytest.raises(ConfigurationError):
            injector.outage(NodeId("zz"), start=1.0, duration=1.0)

    def test_invalid_duration(self, rig):
        _, injector = rig
        with pytest.raises(ConfigurationError):
            injector.outage(NODES[0], start=1.0, duration=0.0)


class TestCampaigns:
    def test_random_crashes_scheduled(self, rig):
        engine, injector = rig
        n = injector.random_crashes(rate_per_node_s=1.0, horizon_s=100.0)
        assert n == 5  # at rate 1/s everyone dies within 100s
        engine.run()
        assert len(injector.crashed_nodes()) == 5

    def test_zero_rate_schedules_nothing(self, rig):
        engine, injector = rig
        assert injector.random_crashes(0.0, 100.0) == 0

    def test_random_outages(self, rig):
        engine, injector = rig
        n = injector.random_outages(
            rate_per_node_s=0.01, mean_duration_s=10.0, horizon_s=1000.0
        )
        assert n > 0
        engine.run()
        starts = [e for e in injector.history if e.kind == "outage-start"]
        ends = [e for e in injector.history if e.kind == "outage-end"]
        assert len(starts) == len(ends) == n
        assert all(injector.is_alive(node) for node in NODES)

    def test_invalid_campaign_params(self, rig):
        _, injector = rig
        with pytest.raises(ConfigurationError):
            injector.random_crashes(-1.0, 10.0)
        with pytest.raises(ConfigurationError):
            injector.random_outages(1.0, 0.0, 10.0)


class TestConstruction:
    def test_empty_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureInjector(SimulationEngine(), [])


class TestSlowLink:
    def _network(self):
        from repro.sim.network import GeoPoint, NetworkModel

        net = NetworkModel(default_bandwidth_bps=100e6)
        for n in NODES:
            net.add_node(n, GeoPoint(0.0, float(NODES.index(n))))
        return net

    def test_throttle_window(self, rig):
        engine, injector = rig
        net = self._network()
        injector.slow_link(NODES[0], net, start=10.0, duration=5.0, factor=0.1)
        engine.run(until=12.0)
        assert net.bandwidth(NODES[0]) == pytest.approx(10e6)
        engine.run()
        assert net.bandwidth(NODES[0]) == pytest.approx(100e6)
        kinds = [e.kind for e in injector.history]
        assert kinds == ["slowlink-start", "slowlink-end"]

    def test_slowlink_skipped_for_crashed_node(self, rig):
        engine, injector = rig
        net = self._network()
        injector.crash(NODES[0], at=1.0)
        injector.slow_link(NODES[0], net, start=2.0, duration=1.0)
        engine.run()
        kinds = [e.kind for e in injector.history]
        assert "slowlink-start" not in kinds

    def test_validation(self, rig):
        _, injector = rig
        net = self._network()
        with pytest.raises(ConfigurationError):
            injector.slow_link(NodeId("zz"), net, start=1.0, duration=1.0)
        with pytest.raises(ConfigurationError):
            injector.slow_link(NODES[0], net, start=1.0, duration=0.0)

    def test_skipped_episode_end_does_not_restore(self, rig):
        # regression: the end callback of an episode whose begin never ran
        # (node crashed first) used to restore the link and emit
        # slowlink-end anyway
        engine, injector = rig
        net = self._network()
        injector.slow_link(NODES[0], net, start=2.0, duration=3.0, factor=0.1)
        injector.crash(NODES[0], at=1.0)
        net.degrade(NODES[0], factor=0.5)  # unrelated degradation must survive
        engine.run()
        assert net.bandwidth(NODES[0]) == pytest.approx(50e6)
        assert all(not e.kind.startswith("slowlink") for e in injector.history)

    def test_crash_mid_episode_restores_and_suppresses_end(self, rig):
        engine, injector = rig
        net = self._network()
        injector.slow_link(NODES[0], net, start=1.0, duration=10.0, factor=0.1)
        injector.crash(NODES[0], at=5.0)
        engine.run(until=6.0)
        # the crash cleaned up the throttle immediately
        assert net.bandwidth(NODES[0]) == pytest.approx(100e6)
        engine.run()
        kinds = [e.kind for e in injector.history]
        assert kinds == ["slowlink-start", "crash"]

    def test_overlapping_episodes_restore_once_at_last_end(self, rig):
        engine, injector = rig
        net = self._network()
        injector.slow_link(NODES[0], net, start=1.0, duration=10.0, factor=0.1)
        injector.slow_link(NODES[0], net, start=5.0, duration=2.0, factor=0.5)
        engine.run(until=6.0)
        assert net.bandwidth(NODES[0]) == pytest.approx(50e6)  # inner episode
        engine.run(until=8.0)
        # inner episode ended but the outer one still holds the link down
        assert net.bandwidth(NODES[0]) < 100e6
        engine.run()
        assert net.bandwidth(NODES[0]) == pytest.approx(100e6)
        kinds = [e.kind for e in injector.history]
        assert kinds.count("slowlink-start") == 2
        assert kinds.count("slowlink-end") == 2


class TestCrashOutageInteraction:
    def test_crash_during_outage_suppresses_phantom_end(self, rig):
        # regression: a node crashing mid-outage used to emit outage-end
        # (and flip back "alive") when the outage timer expired
        engine, injector = rig
        injector.outage(NODES[0], start=1.0, duration=10.0)
        injector.crash(NODES[0], at=5.0)
        engine.run()
        kinds = [e.kind for e in injector.history]
        assert kinds == ["outage-start", "crash"]
        assert not injector.is_alive(NODES[0])


class TestCorruption:
    """Silent bit-rot injection (kind="corrupt")."""

    def _server_rig(self, seed=0):
        from repro.ids import AuthorId, DatasetId
        from repro.obs import Registry
        from repro.social.graph import build_coauthorship_graph
        from repro.social.records import Corpus
        from repro.cdn.allocation import AllocationServer
        from repro.cdn.content import segment_dataset
        from repro.cdn.placement import RandomPlacement
        from repro.cdn.storage import StorageRepository

        from ..conftest import pub

        authors = ("alice", "bob", "carol", "dave", "erin")
        graph = build_coauthorship_graph(
            Corpus(
                [
                    pub("p1", 2009, "alice", "bob", "carol"),
                    pub("p2", 2010, "carol", "dave", "erin"),
                    pub("p3", 2010, "alice", "bob"),
                ]
            )
        )
        server = AllocationServer(
            graph, RandomPlacement(), seed=seed, registry=Registry()
        )
        for a in authors:
            server.register_repository(
                AuthorId(a), StorageRepository(NodeId(a), 10_000)
            )
        ds = segment_dataset(DatasetId("d"), AuthorId("alice"), 1000)
        server.publish_dataset(ds, n_replicas=3)
        engine = SimulationEngine()
        nodes = [NodeId(a) for a in authors]
        injector = FailureInjector(engine, nodes, seed=seed)
        injector.attach_server(server)
        return engine, injector, server, ds.segments[0].segment_id

    def test_corrupt_requires_attached_server(self, rig):
        engine, injector = rig
        with pytest.raises(ConfigurationError, match="attach_server"):
            injector.corrupt(NODES[0], NODES[0], at=1.0)
        with pytest.raises(ConfigurationError, match="attach_server"):
            injector.random_corruptions(1e-3, 100.0)

    def test_corrupt_flips_stored_digest_silently(self):
        engine, injector, server, seg = self._server_rig()
        node = sorted(server.catalog.nodes_hosting(seg))[0]
        injector.corrupt(node, seg, at=5.0)
        engine.run()
        assert server.repository(node).is_corrupted(seg)
        # silent: node still alive, replica still cataloged servable
        assert injector.is_alive(node)
        assert node in server.catalog.nodes_hosting(seg)
        events = [e for e in injector.history if e.kind == "corrupt"]
        assert len(events) == 1
        assert events[0].segment == seg and events[0].node == node

    def test_corrupt_skipped_on_crashed_node(self):
        engine, injector, server, seg = self._server_rig()
        node = sorted(server.catalog.nodes_hosting(seg))[0]
        injector.crash(node, at=1.0)
        injector.corrupt(node, seg, at=5.0)
        engine.run()
        assert not any(e.kind == "corrupt" for e in injector.history)

    def test_corrupt_skipped_when_not_hosting(self):
        engine, injector, server, seg = self._server_rig()
        non_host = next(
            n
            for n in sorted(injector.nodes)
            if n not in server.catalog.nodes_hosting(seg)
        )
        injector.corrupt(non_host, seg, at=5.0)
        engine.run()
        assert not any(e.kind == "corrupt" for e in injector.history)

    def test_random_corruptions_deterministic(self):
        def landed(seed):
            engine, injector, server, seg = self._server_rig(seed=3)
            injector._rng = __import__("repro.rng", fromlist=["make_rng"]).make_rng(seed)
            injector.random_corruptions(5e-3, 500.0)
            engine.run(until=500.0)
            return [
                (e.time, e.node, e.segment)
                for e in injector.history
                if e.kind == "corrupt"
            ]

        assert landed(11) == landed(11)
        assert landed(11) != landed(12)

    def test_zero_rate_draws_nothing(self):
        engine, injector, server, seg = self._server_rig()
        before = injector._rng.bit_generator.state
        assert injector.random_corruptions(0.0, 500.0) == 0
        assert injector._rng.bit_generator.state == before


class TestDuplicateNodes:
    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FailureInjector(
                SimulationEngine(), [NODES[0], NODES[1], NODES[0]], seed=0
            )

    def test_distinct_node_ids_accepted(self):
        FailureInjector(SimulationEngine(), NODES, seed=0)


class TestPartitionInjection:
    def _net(self):
        from repro.sim.network import GeoPoint, NetworkModel

        net = NetworkModel()
        for node in NODES:
            net.add_node(node, GeoPoint(0, 0))
        return net

    def _split(self, injector, net, *, start=10.0, duration=5.0):
        injector.network_partition(
            net,
            [[NODES[0], NODES[1]], [NODES[2], NODES[3], NODES[4]]],
            start=start,
            duration=duration,
        )

    def test_partition_start_end_events(self, rig):
        engine, injector = rig
        net = self._net()
        self._split(injector, net)
        engine.run(until=12.0)
        assert net.partitioned
        assert not net.reachable(NODES[0], NODES[2])
        starts = [e for e in injector.history if e.kind == "partition-start"]
        assert {e.node for e in starts} == set(NODES)
        assert all(e.time == 10.0 for e in starts)
        engine.run()
        assert not net.partitioned
        assert net.reachable(NODES[0], NODES[2])
        ends = [e for e in injector.history if e.kind == "partition-end"]
        assert {e.node for e in ends} == set(NODES)
        assert all(e.time == 15.0 for e in ends)

    def test_partition_side(self, rig):
        engine, injector = rig
        net = self._net()
        self._split(injector, net)
        assert injector.partition_side(NODES[0]) is None  # not active yet
        engine.run(until=12.0)
        assert injector.partition_side(NODES[0]) == "minority"
        assert injector.partition_side(NODES[1]) == "minority"
        assert injector.partition_side(NODES[4]) == "majority"
        engine.run()
        assert injector.partition_side(NODES[0]) is None

    def test_crash_mid_partition_suppresses_restoration(self, rig):
        engine, injector = rig
        net = self._net()
        self._split(injector, net)
        injector.crash(NODES[0], at=12.0)
        engine.run()
        ends = {e.node for e in injector.history if e.kind == "partition-end"}
        assert NODES[0] not in ends  # dead nodes get no restoration event
        assert ends == set(NODES) - {NODES[0]}
        assert not net.partitioned  # the heal itself still happened

    def test_overlapping_episode_skipped_entirely(self, rig):
        engine, injector = rig
        net = self._net()
        self._split(injector, net, start=10.0, duration=10.0)
        self._split(injector, net, start=15.0, duration=10.0)  # overlaps
        engine.run()
        starts = [e for e in injector.history if e.kind == "partition-start"]
        ends = [e for e in injector.history if e.kind == "partition-end"]
        assert len(starts) == len(NODES)  # one episode, not two
        assert len(ends) == len(NODES)
        assert all(e.time == 20.0 for e in ends)
        assert not net.partitioned

    def test_on_heal_fires_after_end_events(self, rig):
        engine, injector = rig
        net = self._net()
        heals = []
        injector.on_heal(heals.append)
        self._split(injector, net, start=10.0, duration=5.0)
        engine.run()
        assert heals == [15.0]

    def test_validation(self, rig):
        _, injector = rig
        net = self._net()
        with pytest.raises(ConfigurationError):
            self._split(injector, net, duration=0.0)
        with pytest.raises(ConfigurationError):
            injector.network_partition(
                net, [[NodeId("zz")], [NODES[0]]], start=1.0, duration=1.0
            )
        with pytest.raises(ConfigurationError):
            injector.network_partition(
                net, [[NODES[0], NODES[1]]], start=1.0, duration=1.0
            )
        with pytest.raises(ConfigurationError):
            injector.network_partition(
                net, [[NODES[0]], []], start=1.0, duration=1.0
            )

    def test_random_partitions_schedule_and_heal(self, rig):
        engine, injector = rig
        net = self._net()
        n = injector.random_partitions(0.01, 50.0, 1000.0, net)
        assert n > 0
        engine.run()
        starts = [e for e in injector.history if e.kind == "partition-start"]
        ends = [e for e in injector.history if e.kind == "partition-end"]
        assert starts and len(starts) == len(ends)
        assert not net.partitioned  # every episode healed

    def test_random_partitions_zero_rate_draws_nothing(self):
        net = self._net()
        a = FailureInjector(SimulationEngine(), NODES, seed=3)
        b = FailureInjector(SimulationEngine(), NODES, seed=3)
        assert a.random_partitions(0.0, 100.0, 1000.0, net) == 0
        # the zero-rate call consumed nothing: both streams still aligned
        assert a._rng.random() == b._rng.random()

    def test_random_partitions_validation(self, rig):
        _, injector = rig
        net = self._net()
        with pytest.raises(ConfigurationError):
            injector.random_partitions(-1.0, 10.0, 100.0, net)
        with pytest.raises(ConfigurationError):
            injector.random_partitions(1.0, 10.0, 100.0, net, fraction=0.0)
        with pytest.raises(ConfigurationError):
            injector.random_partitions(1.0, 10.0, 100.0, net, fraction=1.0)
