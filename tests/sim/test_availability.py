"""Unit tests for repro.sim.availability."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import NodeId
from repro.sim.availability import (
    DAY_S,
    AlwaysOn,
    Diurnal,
    IndependentChurn,
    TraceDriven,
)

N1, N2 = NodeId("n1"), NodeId("n2")


class TestAlwaysOn:
    def test_always_online(self):
        m = AlwaysOn()
        assert m.is_online(N1, 0.0)
        assert m.is_online(N1, 1e9)
        assert m.availability(N1, 0.0, 100.0) == 1.0

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            AlwaysOn().availability(N1, 10.0, 10.0)


class TestDiurnal:
    def test_duty_cycle_availability(self):
        m = Diurnal(duty_hours=12.0, seed=0)
        assert m.availability(N1, 0.0, 10 * DAY_S) == pytest.approx(0.5)

    def test_on_off_pattern_within_day(self):
        m = Diurnal(duty_hours=8.0, seed=0)
        states = [m.is_online(N1, t * 3600.0) for t in range(24)]
        assert 6 <= sum(states) <= 9  # ~8 of 24 hours

    def test_deterministic_offsets(self):
        a = Diurnal(duty_hours=8.0, seed=5)
        b = Diurnal(duty_hours=8.0, seed=5)
        for t in range(0, 86400, 3600):
            assert a.is_online(N1, float(t)) == b.is_online(N1, float(t))

    def test_different_nodes_different_phases(self):
        m = Diurnal(duty_hours=8.0, seed=0)
        nodes = [NodeId(f"n{i}") for i in range(30)]
        at_noon = [m.is_online(n, DAY_S / 2) for n in nodes]
        assert 0 < sum(at_noon) < 30  # phases differ

    def test_overlap_full_for_same_node(self):
        m = Diurnal(duty_hours=10.0, seed=0)
        assert m.overlap(N1, N1) == pytest.approx(10.0 / 24.0)

    def test_overlap_symmetric_and_bounded(self):
        m = Diurnal(duty_hours=10.0, seed=0)
        o = m.overlap(N1, N2)
        assert o == pytest.approx(m.overlap(N2, N1))
        assert 0.0 <= o <= 10.0 / 24.0 + 1e-9

    def test_invalid_duty(self):
        with pytest.raises(ConfigurationError):
            Diurnal(duty_hours=0.0)
        with pytest.raises(ConfigurationError):
            Diurnal(duty_hours=25.0)


class TestIndependentChurn:
    def test_starts_online(self):
        m = IndependentChurn(seed=0)
        assert m.is_online(N1, 0.0)

    def test_consistent_within_instance(self):
        m = IndependentChurn(seed=0)
        first = [m.is_online(N1, t * 1000.0) for t in range(50)]
        second = [m.is_online(N1, t * 1000.0) for t in range(50)]
        assert first == second

    def test_deterministic_across_instances(self):
        a = IndependentChurn(seed=9)
        b = IndependentChurn(seed=9)
        ts = [t * 777.0 for t in range(40)]
        assert [a.is_online(N1, t) for t in ts] == [b.is_online(N1, t) for t in ts]

    def test_long_run_availability_near_expected(self):
        m = IndependentChurn(mean_online_s=3000.0, mean_offline_s=1000.0, seed=1)
        expected = m.expected_availability()
        assert expected == pytest.approx(0.75)
        measured = m.availability(N1, 0.0, 3_000_000.0, samples=500)
        assert measured == pytest.approx(expected, abs=0.12)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            IndependentChurn(seed=0).is_online(N1, -1.0)

    def test_invalid_durations(self):
        with pytest.raises(ConfigurationError):
            IndependentChurn(mean_online_s=0.0)


class TestTraceDriven:
    def test_intervals_respected(self):
        m = TraceDriven({N1: [(0.0, 10.0), (20.0, 30.0)]})
        assert m.is_online(N1, 5.0)
        assert not m.is_online(N1, 15.0)
        assert m.is_online(N1, 25.0)
        assert not m.is_online(N1, 30.0)  # half-open

    def test_unknown_node_offline(self):
        m = TraceDriven({})
        assert not m.is_online(N1, 5.0)

    def test_exact_availability(self):
        m = TraceDriven({N1: [(0.0, 25.0), (75.0, 100.0)]})
        assert m.availability(N1, 0.0, 100.0) == pytest.approx(0.5)

    def test_partial_window_clipping(self):
        m = TraceDriven({N1: [(0.0, 100.0)]})
        assert m.availability(N1, 50.0, 150.0) == pytest.approx(0.5)

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceDriven({N1: [(0.0, 10.0), (5.0, 15.0)]})

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceDriven({N1: [(5.0, 5.0)]})
