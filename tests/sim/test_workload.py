"""Unit tests for repro.sim.workload."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.ids import AuthorId, DatasetId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.sim.workload import SocialWorkloadGenerator, WorkloadConfig

from ..conftest import pub


@pytest.fixture
def chain():
    """a - b - c - d chain for clean hop distances."""
    return build_coauthorship_graph(
        Corpus([pub("p1", 2009, "a", "b"), pub("p2", 2009, "b", "c"), pub("p3", 2009, "c", "d")])
    )


OWNERS = {DatasetId("ds-a"): AuthorId("a"), DatasetId("ds-d"): AuthorId("d")}


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": 0},
            {"mean_requests_per_user": -1},
            {"zipf_exponent": -0.1},
            {"social_decay": 0.0},
            {"social_decay": 1.5},
            {"unreachable_weight": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadConfig(**kwargs)


class TestGeneration:
    def test_requests_sorted_and_within_duration(self, chain):
        gen = SocialWorkloadGenerator(chain, OWNERS, seed=0)
        reqs = gen.generate()
        times = [r.time for r in reqs]
        assert times == sorted(times)
        assert all(0 <= t <= gen.config.duration_s for t in times)

    def test_volume_matches_mean(self, chain):
        cfg = WorkloadConfig(mean_requests_per_user=50.0)
        gen = SocialWorkloadGenerator(chain, OWNERS, config=cfg, seed=0)
        reqs = gen.generate()
        assert 150 <= len(reqs) <= 250  # 4 users x 50 +/- noise

    def test_deterministic(self, chain):
        a = SocialWorkloadGenerator(chain, OWNERS, seed=5).generate()
        b = SocialWorkloadGenerator(chain, OWNERS, seed=5).generate()
        assert a == b

    def test_social_locality_bias(self, chain):
        cfg = WorkloadConfig(
            mean_requests_per_user=400.0, zipf_exponent=0.0, social_decay=0.3
        )
        gen = SocialWorkloadGenerator(chain, OWNERS, config=cfg, seed=0)
        reqs = gen.generate(users=[AuthorId("a")])
        near = sum(1 for r in reqs if r.dataset_id == "ds-a")
        far = sum(1 for r in reqs if r.dataset_id == "ds-d")
        # a is 0 hops from ds-a's owner and 3 from ds-d's: bias ~ 1/0.3^3
        assert near > far * 10

    def test_decay_one_disables_locality(self, chain):
        cfg = WorkloadConfig(
            mean_requests_per_user=600.0, zipf_exponent=0.0, social_decay=1.0
        )
        gen = SocialWorkloadGenerator(chain, OWNERS, config=cfg, seed=0)
        reqs = gen.generate(users=[AuthorId("a")])
        near = sum(1 for r in reqs if r.dataset_id == "ds-a")
        far = sum(1 for r in reqs if r.dataset_id == "ds-d")
        assert abs(near - far) < 0.25 * len(reqs)

    def test_external_owner_gets_unreachable_weight(self, chain):
        owners = {DatasetId("ds-x"): AuthorId("outsider"), DatasetId("ds-a"): AuthorId("a")}
        cfg = WorkloadConfig(
            mean_requests_per_user=300.0, zipf_exponent=0.0, unreachable_weight=0.01
        )
        gen = SocialWorkloadGenerator(chain, owners, config=cfg, seed=0)
        reqs = gen.generate(users=[AuthorId("a")])
        external = sum(1 for r in reqs if r.dataset_id == "ds-x")
        assert external < 0.1 * len(reqs)

    def test_requesters_restricted_to_users_arg(self, chain):
        gen = SocialWorkloadGenerator(chain, OWNERS, seed=0)
        reqs = gen.generate(users=[AuthorId("b")])
        assert {r.requester for r in reqs} == {"b"}

    def test_no_datasets_rejected(self, chain):
        with pytest.raises(WorkloadError):
            SocialWorkloadGenerator(chain, {}, seed=0)

    def test_empty_users_rejected(self, chain):
        gen = SocialWorkloadGenerator(chain, OWNERS, seed=0)
        with pytest.raises(WorkloadError):
            gen.generate(users=[])

    def test_zipf_popularity_skew(self, chain):
        owners = {DatasetId(f"ds{i}"): AuthorId("outsider") for i in range(10)}
        cfg = WorkloadConfig(mean_requests_per_user=500.0, zipf_exponent=1.5)
        gen = SocialWorkloadGenerator(chain, owners, config=cfg, seed=0)
        reqs = gen.generate(users=[AuthorId("a")])
        counts = {}
        for r in reqs:
            counts[r.dataset_id] = counts.get(r.dataset_id, 0) + 1
        # rank-1 dataset (sorted order: ds0) far more popular than ds9
        assert counts.get(DatasetId("ds0"), 0) > 5 * counts.get(DatasetId("ds9"), 1)
