"""Unit tests for repro.sim.engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(5.0, lambda e: order.append("b"))
        engine.schedule(1.0, lambda e: order.append("a"))
        engine.schedule(9.0, lambda e: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda e: order.append(1))
        engine.schedule(1.0, lambda e: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_clock_advances(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(3.0, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [3.0]
        assert engine.now == 3.0

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda e: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda e: None)

    def test_schedule_in_relative(self):
        engine = SimulationEngine()
        engine.schedule(2.0, lambda e: e.schedule_in(3.0, lambda e2: None))
        engine.run()
        assert engine.now == 5.0

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, lambda e: None)

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        hits = []

        def chain(e):
            hits.append(e.now)
            if len(hits) < 3:
                e.schedule_in(1.0, chain)

        engine.schedule(0.0, chain)
        engine.run()
        assert hits == [0.0, 1.0, 2.0]


class TestRunControl:
    def test_run_until_stops_and_advances_clock(self):
        engine = SimulationEngine()
        ran = []
        engine.schedule(1.0, lambda e: ran.append(1))
        engine.schedule(10.0, lambda e: ran.append(10))
        n = engine.run(until=5.0)
        assert n == 1 and ran == [1]
        assert engine.now == 5.0  # clock advanced to horizon
        engine.run()
        assert ran == [1, 10]

    def test_max_events(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.schedule(float(t), lambda e: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending == 2

    def test_step(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda e: None)
        assert engine.step() is True
        assert engine.step() is False

    def test_no_reentrant_run(self):
        engine = SimulationEngine()

        def bad(e):
            e.run()

        engine.schedule(1.0, bad)
        with pytest.raises(SimulationError):
            engine.run()

    def test_no_reentrant_step(self):
        engine = SimulationEngine()

        def bad(e):
            e.step()

        engine.schedule(1.0, bad)
        with pytest.raises(SimulationError):
            engine.step()
        # the guard releases the running flag: the engine is still usable
        engine.schedule(2.0, lambda e: None)
        assert engine.step() is True

    def test_step_updates_pending_gauge(self):
        from repro.obs import Registry

        registry = Registry()
        engine = SimulationEngine(registry=registry)
        engine.schedule(1.0, lambda e: None)
        engine.schedule(2.0, lambda e: None)
        engine.step()
        snap = registry.snapshot()
        assert snap["gauges"]["sim.pending_events"]["value"] == 1

    def test_step_skips_cancelled(self):
        engine = SimulationEngine()
        ran = []
        ev = engine.schedule(1.0, lambda e: ran.append("a"))
        engine.schedule(2.0, lambda e: ran.append("b"))
        engine.cancel(ev)
        assert engine.step() is True
        assert ran == ["b"]

    def test_processed_counter(self):
        engine = SimulationEngine()
        for t in range(4):
            engine.schedule(float(t), lambda e: None)
        engine.run()
        assert engine.processed == 4


class TestCancel:
    def test_cancelled_event_skipped(self):
        engine = SimulationEngine()
        ran = []
        ev = engine.schedule(1.0, lambda e: ran.append("x"))
        engine.cancel(ev)
        engine.run()
        assert ran == []

    def test_pending_accounts_for_cancelled(self):
        engine = SimulationEngine()
        ev = engine.schedule(1.0, lambda e: None)
        engine.schedule(2.0, lambda e: None)
        engine.cancel(ev)
        assert engine.pending == 1

    def test_cancel_returns_true_once(self):
        engine = SimulationEngine()
        ev = engine.schedule(1.0, lambda e: None)
        assert engine.cancel(ev) is True
        assert engine.cancel(ev) is False  # double-cancel is a no-op

    def test_cancel_after_execution_is_noop(self):
        # regression: cancelling an already-executed event used to leak its
        # seq into the cancelled set forever, making `pending` undercount
        engine = SimulationEngine()
        ev = engine.schedule(1.0, lambda e: None)
        engine.run()
        assert engine.cancel(ev) is False
        engine.schedule(2.0, lambda e: None)
        assert engine.pending == 1

    def test_double_cancel_does_not_undercount_pending(self):
        engine = SimulationEngine()
        ev = engine.schedule(1.0, lambda e: None)
        engine.schedule(2.0, lambda e: None)
        engine.cancel(ev)
        engine.cancel(ev)
        assert engine.pending == 1


class TestEvery:
    def test_periodic_callback(self):
        engine = SimulationEngine()
        ticks = []
        engine.every(10.0, lambda e: ticks.append(e.now))
        engine.run(until=45.0)
        assert ticks == [10.0, 20.0, 30.0, 40.0]

    def test_custom_start(self):
        engine = SimulationEngine()
        ticks = []
        engine.every(10.0, lambda e: ticks.append(e.now), start=5.0)
        engine.run(until=30.0)
        assert ticks == [5.0, 15.0, 25.0]

    def test_stop_via_stopiteration(self):
        engine = SimulationEngine()
        ticks = []

        def cb(e):
            ticks.append(e.now)
            if len(ticks) == 2:
                raise StopIteration

        engine.every(1.0, cb)
        engine.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_invalid_interval(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.every(0.0, lambda e: None)
