"""Unit tests for repro.ids."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, NodeId, id_sequence, validate_id


class TestValidate:
    def test_valid_ids_pass_through(self):
        for v in ("a", "a-b", "a.b:c_d", "A9"):
            assert validate_id(v) == v

    @pytest.mark.parametrize("bad", ["", "has space", "a/b", "a\nb", None, 42])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            validate_id(bad)  # type: ignore[arg-type]

    def test_kind_appears_in_message(self):
        with pytest.raises(ConfigurationError, match="dataset id"):
            validate_id("", kind="dataset id")


class TestTypedIds:
    def test_ids_are_strings(self):
        assert AuthorId("x") == "x"
        assert isinstance(NodeId("n"), str)

    def test_ids_hash_like_strings(self):
        assert {AuthorId("x")} == {"x"}

    def test_distinct_types_still_compare_by_value(self):
        # str semantics: equality is by value even across id types
        assert AuthorId("x") == NodeId("x")


class TestIdSequence:
    def test_sequence_values(self):
        seq = id_sequence("node")
        assert list(itertools.islice(seq, 3)) == ["node-0", "node-1", "node-2"]

    def test_custom_start(self):
        seq = id_sequence("n", start=5)
        assert next(seq) == "n-5"

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ConfigurationError):
            id_sequence("bad prefix")
