"""Documentation coverage: every public item carries a docstring.

Walks the installed ``repro`` package and asserts that every public
module, class, function, and method defined in it is documented — the
"doc comments on every public item" deliverable, enforced mechanically.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_documented(module):
    assert inspect.getdoc(module), f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not inspect.getdoc(obj):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if not (inspect.isfunction(member) or isinstance(member, property)):
                    continue
                target = member.fget if isinstance(member, property) else member
                if target is None or not inspect.getdoc(target):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )
