"""Unit tests for repro.social.records."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, GraphError
from repro.ids import AuthorId, PublicationId
from repro.social.records import Author, Corpus, Publication

from ..conftest import pub


class TestAuthor:
    def test_name_defaults_to_id(self):
        a = Author(AuthorId("smith"))
        assert a.name == "smith"

    def test_explicit_name_kept(self):
        a = Author(AuthorId("smith"), name="J. Smith")
        assert a.name == "J. Smith"

    def test_invalid_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Author(AuthorId("has space"))

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Author(AuthorId(""))


class TestPublication:
    def test_authors_coerced_to_frozenset(self):
        p = Publication(PublicationId("p"), 2010, frozenset({AuthorId("a"), AuthorId("b")}))
        assert isinstance(p.authors, frozenset)
        assert p.n_authors == 2

    def test_no_authors_rejected(self):
        with pytest.raises(ConfigurationError):
            Publication(PublicationId("p"), 2010, frozenset())

    def test_implausible_year_rejected(self):
        with pytest.raises(ConfigurationError):
            pub("p", 99, "a", "b")

    def test_coauthor_pairs_unordered_unique(self):
        p = pub("p", 2010, "c", "a", "b")
        pairs = list(p.coauthor_pairs())
        assert pairs == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_single_author_has_no_pairs(self):
        p = pub("p", 2010, "solo")
        assert list(p.coauthor_pairs()) == []

    def test_duplicate_authors_collapse(self):
        p = Publication(PublicationId("p"), 2010, frozenset([AuthorId("a"), AuthorId("a"), AuthorId("b")]))
        assert p.n_authors == 2


class TestCorpus:
    def test_len_and_iteration_sorted_by_year(self, tiny_corpus):
        assert len(tiny_corpus) == 7
        years = [p.year for p in tiny_corpus]
        assert years == sorted(years)

    def test_duplicate_pub_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Corpus([pub("p", 2010, "a", "b"), pub("p", 2011, "c", "d")])

    def test_author_ids(self, tiny_corpus):
        assert tiny_corpus.author_ids == {"alice", "bob", "carol", "dave", "eve", "frank"}

    def test_publications_of(self, tiny_corpus):
        assert {p.pub_id for p in tiny_corpus.publications_of(AuthorId("alice"))} == {
            "p1",
            "p2",
            "p4",
        }

    def test_publications_of_unknown_author_empty(self, tiny_corpus):
        assert tiny_corpus.publications_of(AuthorId("nobody")) == ()

    def test_lookup_unknown_author_raises(self, tiny_corpus):
        with pytest.raises(GraphError):
            tiny_corpus.author(AuthorId("nobody"))

    def test_lookup_unknown_publication_raises(self, tiny_corpus):
        with pytest.raises(GraphError):
            tiny_corpus.publication(PublicationId("nope"))

    def test_contains(self, tiny_corpus):
        assert "p1" in tiny_corpus
        assert "nope" not in tiny_corpus

    def test_year_range(self, tiny_corpus):
        assert tiny_corpus.year_range() == (2009, 2011)

    def test_year_range_empty_corpus_raises(self):
        with pytest.raises(GraphError):
            Corpus([]).year_range()

    def test_filter_years_inclusive(self, tiny_corpus):
        train = tiny_corpus.filter_years(2009, 2010)
        assert len(train) == 6
        assert all(p.year <= 2010 for p in train)

    def test_filter_years_invalid_range(self, tiny_corpus):
        with pytest.raises(ConfigurationError):
            tiny_corpus.filter_years(2011, 2009)

    def test_filter_max_authors(self, mega_corpus):
        small = mega_corpus.filter_max_authors(5)
        assert all(p.n_authors <= 5 for p in small)
        assert len(small) == 4  # drops only the 10-author paper

    def test_filter_max_authors_invalid(self, tiny_corpus):
        with pytest.raises(ConfigurationError):
            tiny_corpus.filter_max_authors(0)

    def test_restrict_authors_keeps_full_author_lists(self, mega_corpus):
        sub = sub_corpus = mega_corpus.restrict_authors([AuthorId("m5")])
        # only the big paper mentions m5; its full author list is retained
        assert len(sub) == 1
        assert sub.publications[0].n_authors == 10

    def test_coauthorship_counts(self, tiny_corpus):
        counts = tiny_corpus.coauthorship_counts()
        assert counts[("alice", "bob")] == 2
        assert counts[("bob", "carol")] == 1
        assert ("alice", "dave") not in counts

    def test_publication_count_by_year(self, tiny_corpus):
        assert tiny_corpus.publication_count_by_year() == {2009: 3, 2010: 3, 2011: 1}

    def test_author_list_size_histogram(self, mega_corpus):
        hist = mega_corpus.author_list_size_histogram()
        assert hist == {10: 1, 2: 4}

    def test_derived_corpus_shares_author_records(self, tiny_corpus):
        train = tiny_corpus.filter_years(2009, 2010)
        assert train.author(AuthorId("alice")).author_id == "alice"
