"""Unit tests for repro.social.communities."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import networkx as nx
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.social.communities import community_of, detect_communities, modularity
from repro.social.graph import CoauthorshipGraph, build_coauthorship_graph

from ..conftest import pub
from repro.social.records import Corpus


@pytest.fixture
def two_cliques():
    """Two 4-cliques joined by a single bridge edge."""
    pubs = [pub("l", 2009, "a1", "a2", "a3", "a4"), pub("r", 2009, "b1", "b2", "b3", "b4")]
    pubs.append(pub("bridge", 2010, "a1", "b1"))
    return build_coauthorship_graph(Corpus(pubs))


class TestDetect:
    def test_greedy_modularity_finds_cliques(self, two_cliques):
        comms = detect_communities(two_cliques, method="greedy-modularity")
        assert len(comms) == 2
        sets = {frozenset(c) for c in comms}
        assert frozenset({"a1", "a2", "a3", "a4"}) in sets
        assert frozenset({"b1", "b2", "b3", "b4"}) in sets

    def test_label_propagation_partitions(self, two_cliques):
        comms = detect_communities(two_cliques, method="label-propagation", seed=3)
        all_nodes = set().union(*comms)
        assert all_nodes == set(two_cliques.nodes())
        assert sum(len(c) for c in comms) == two_cliques.n_nodes

    def test_deterministic_with_seed(self, two_cliques):
        a = detect_communities(two_cliques, method="label-propagation", seed=7)
        b = detect_communities(two_cliques, method="label-propagation", seed=7)
        assert a == b

    def test_unknown_method_rejected(self, two_cliques):
        with pytest.raises(ConfigurationError):
            detect_communities(two_cliques, method="magic")

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            detect_communities(CoauthorshipGraph(nx.Graph()))

    def test_equal_size_communities_ordered_by_members(self, two_cliques):
        """Same-size communities must sort by member list, not hash order."""
        comms = detect_communities(two_cliques)
        assert [sorted(c) for c in comms] == [
            ["a1", "a2", "a3", "a4"],
            ["b1", "b2", "b3", "b4"],
        ]

    def test_largest_first_ordering(self, synthetic):
        from repro.social.ego import ego_corpus

        corpus, seed = synthetic
        g = build_coauthorship_graph(ego_corpus(corpus, seed, hops=2))
        comms = detect_communities(g)
        sizes = [len(c) for c in comms]
        assert sizes == sorted(sizes, reverse=True)


class TestModularity:
    def test_good_partition_scores_high(self, two_cliques):
        comms = detect_communities(two_cliques)
        assert modularity(two_cliques, comms) > 0.3

    def test_trivial_partition_scores_zero(self, two_cliques):
        q = modularity(two_cliques, [set(two_cliques.nodes())])
        assert q == pytest.approx(0.0, abs=1e-9)

    def test_overlapping_partition_rejected(self, two_cliques):
        with pytest.raises(ConfigurationError):
            modularity(two_cliques, [{"a1", "a2"}, {"a2", "a3"}])

    def test_incomplete_partition_rejected(self, two_cliques):
        with pytest.raises(ConfigurationError):
            modularity(two_cliques, [{"a1", "a2"}])


class TestCommunityOf:
    def test_inversion(self):
        mapping = community_of([{"a", "b"}, {"c"}])
        assert mapping == {"a": 0, "b": 0, "c": 1}


# Computes the full community -> partition chain in a fresh interpreter and
# prints it canonically; run under different PYTHONHASHSEED values, every
# byte must match (the headline hash-order-nondeterminism regression).
_HASHSEED_SCRIPT = """
import json
from repro.ids import SegmentId
from repro.sim.scenarios import scenario_graph
from repro.social.communities import community_of, detect_communities
from repro.cdn.partitioning import SocialPartitioner

graph = scenario_graph(far_clusters=5)
comms = detect_communities(graph)
part = SocialPartitioner(graph, communities=comms)
segs = [SegmentId(f"d:seg{i}") for i in range(6)]
result = part.partition(segs)
print(json.dumps({
    "communities": [sorted(c) for c in comms],
    "community_of": sorted(community_of(comms).items()),
    "segments": sorted(
        (str(s), c) for s, c in result.community_of_segment.items()
    ),
    "hosts": sorted(
        (str(s), str(a)) for s, a in result.host_of_segment.items()
    ),
}))
"""


class TestHashSeedDeterminism:
    """detect_communities and everything keyed on it must not depend on
    the interpreter's hash seed — the bug that made community indices
    (and thus shard assignment) differ between fork and spawn workers."""

    def _run(self, hashseed: str) -> dict:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(out.stdout)

    def test_partition_identical_across_hash_seeds(self):
        runs = [self._run(seed) for seed in ("0", "1", "31337")]
        assert runs[0] == runs[1] == runs[2]

    def test_subprocess_matches_in_process(self):
        """A freshly spawned interpreter (any hash seed) must reproduce
        the current process's partition exactly."""
        from repro.ids import SegmentId
        from repro.sim.scenarios import scenario_graph
        from repro.cdn.partitioning import SocialPartitioner

        graph = scenario_graph(far_clusters=5)
        comms = detect_communities(graph)
        part = SocialPartitioner(graph, communities=comms)
        segs = [SegmentId(f"d:seg{i}") for i in range(6)]
        result = part.partition(segs)
        sub = self._run("random")
        assert sub["communities"] == [sorted(c) for c in comms]
        assert sub["segments"] == sorted(
            [str(s), c] for s, c in result.community_of_segment.items()
        )
