"""Unit tests for repro.social.generators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.social.generators import (
    CorpusConfig,
    DBLPStyleCorpusGenerator,
    generate_corpus,
)

SMALL = CorpusConfig(
    n_groups=30, n_consortium=120, mega_paper_size=20, consortium_block_size=20
)


class TestConfigValidation:
    def test_defaults_valid(self):
        CorpusConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"years": (2011, 2009)},
            {"n_groups": 1},
            {"p_external": 1.5},
            {"p_repeat_collab": -0.1},
            {"p_single_author": 0.7, "p_large": 0.5},
            {"pubs_per_author_year": 0.0},
            {"large_min": 1},
            {"large_min": 10, "large_max": 9},
            {"n_consortium": -1},
            {"mega_paper_size": -2},
            {"consortium_block_size": 0},
            {"p_block_escape": 2.0},
            {"author_count_tail": 0.0} if hasattr(CorpusConfig, "author_count_tail") else {"consortium_fraction": 1.2},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CorpusConfig(**kwargs)


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        c1 = DBLPStyleCorpusGenerator(SMALL, seed=5).generate()
        c2 = DBLPStyleCorpusGenerator(SMALL, seed=5).generate()
        assert len(c1) == len(c2)
        assert [p.pub_id for p in c1] == [p.pub_id for p in c2]
        assert [sorted(p.authors) for p in c1] == [sorted(p.authors) for p in c2]

    def test_different_seeds_differ(self):
        c1 = DBLPStyleCorpusGenerator(SMALL, seed=5).generate()
        c2 = DBLPStyleCorpusGenerator(SMALL, seed=6).generate()
        assert [sorted(p.authors) for p in c1] != [sorted(p.authors) for p in c2]

    def test_years_within_config(self):
        corpus = DBLPStyleCorpusGenerator(SMALL, seed=5).generate()
        lo, hi = corpus.year_range()
        assert lo >= 2009 and hi <= 2011

    def test_seed_author_publishes(self):
        gen = DBLPStyleCorpusGenerator(SMALL, seed=5)
        corpus = gen.generate()
        assert len(corpus.publications_of(gen.seed_author)) >= 1

    def test_mega_paper_present_with_requested_size(self):
        gen = DBLPStyleCorpusGenerator(SMALL, seed=5)
        corpus = gen.generate()
        sizes = corpus.author_list_size_histogram()
        assert max(sizes) == 20  # mega paper dominates

    def test_mega_paper_disabled(self):
        cfg = CorpusConfig(
            n_groups=30, n_consortium=120, mega_paper_size=0, consortium_block_size=20
        )
        corpus = DBLPStyleCorpusGenerator(cfg, seed=5).generate()
        assert max(corpus.author_list_size_histogram()) <= cfg.large_max

    def test_consortium_members_only_on_large_papers(self):
        corpus = DBLPStyleCorpusGenerator(SMALL, seed=5).generate()
        for p in corpus:
            if any(str(a).startswith("c-") for a in p.authors):
                assert p.n_authors >= SMALL.large_min or p.n_authors == 20

    def test_repeat_collaboration_produces_heavy_edges(self):
        corpus = DBLPStyleCorpusGenerator(SMALL, seed=5).generate()
        counts = corpus.coauthorship_counts()
        assert any(c >= 2 for c in counts.values())

    def test_author_institutions_assigned(self):
        corpus = DBLPStyleCorpusGenerator(SMALL, seed=5).generate()
        gen_seed = DBLPStyleCorpusGenerator.SEED_AUTHOR
        assert corpus.author(gen_seed).institution == "inst-0"

    def test_generate_corpus_wrapper(self):
        corpus, seed = generate_corpus(SMALL, seed=9)
        assert seed in corpus.author_ids
