"""Unit tests for repro.social.io."""

from __future__ import annotations


import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId
from repro.social.io import (
    corpus_from_dict,
    corpus_from_edge_list,
    corpus_to_dict,
    load_corpus,
    load_edge_list,
    save_corpus,
)
from repro.social.records import Author, Corpus

from ..conftest import pub


class TestJsonRoundTrip:
    def test_lossless(self, tiny_corpus):
        doc = corpus_to_dict(tiny_corpus)
        back = corpus_from_dict(doc)
        assert len(back) == len(tiny_corpus)
        assert back.author_ids == tiny_corpus.author_ids
        for p in tiny_corpus:
            q = back.publication(p.pub_id)
            assert q.year == p.year and q.authors == p.authors

    def test_author_metadata_preserved(self):
        corpus = Corpus(
            [pub("p", 2010, "a", "b")],
            authors={
                AuthorId("a"): Author(AuthorId("a"), name="Alice", institution="MIT")
            },
        )
        back = corpus_from_dict(corpus_to_dict(corpus))
        assert back.author(AuthorId("a")).name == "Alice"
        assert back.author(AuthorId("a")).institution == "MIT"

    def test_file_round_trip(self, tiny_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(tiny_corpus, path)
        back = load_corpus(path)
        assert len(back) == len(tiny_corpus)

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError, match="not a repro-corpus"):
            corpus_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, tiny_corpus):
        doc = corpus_to_dict(tiny_corpus)
        doc["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            corpus_from_dict(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid corpus JSON"):
            load_corpus(path)

    def test_synthetic_corpus_round_trips(self, synthetic, tmp_path):
        corpus, _ = synthetic
        path = tmp_path / "synth.json"
        save_corpus(corpus, path)
        back = load_corpus(path)
        assert len(back) == len(corpus)
        assert back.coauthorship_counts() == corpus.coauthorship_counts()


class TestEdgeList:
    def test_pairwise_lines(self):
        corpus = corpus_from_edge_list(
            ["alice bob 2009", "bob carol 2010"]
        )
        assert len(corpus) == 2
        assert corpus.author_ids == {"alice", "bob", "carol"}

    def test_default_year(self):
        corpus = corpus_from_edge_list(["a b"], default_year=2011)
        assert corpus.publications[0].year == 2011

    def test_pub_id_merging(self):
        corpus = corpus_from_edge_list(
            [
                "a b 2009 paperX",
                "a c 2009 paperX",
                "b c 2009 paperX",
            ]
        )
        assert len(corpus) == 1
        assert corpus.publications[0].authors == {"a", "b", "c"}

    def test_comments_and_blanks_skipped(self):
        corpus = corpus_from_edge_list(["# header", "", "a b 2009"])
        assert len(corpus) == 1

    def test_short_line_rejected(self):
        with pytest.raises(ConfigurationError, match="2 fields"):
            corpus_from_edge_list(["alice"])

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError, match="self-loop"):
            corpus_from_edge_list(["a a 2009"])

    def test_bad_year_rejected(self):
        with pytest.raises(ConfigurationError, match="bad year"):
            corpus_from_edge_list(["a b not-a-year"])

    def test_conflicting_pub_years_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicting"):
            corpus_from_edge_list(["a b 2009 p1", "a c 2010 p1"])

    def test_file_loading(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("a\tb\t2009\nb\tc\t2010\n")
        corpus = load_edge_list(path)
        assert len(corpus) == 2

    def test_imported_corpus_feeds_pipeline(self):
        """An imported edge list drives the full case-study pipeline."""
        from repro.casestudy import CaseStudyConfig, run_case_study

        lines = []
        # small two-community corpus over three years with pub ids
        for y in (2009, 2010, 2011):
            lines += [
                f"a b {y} L{y}",
                f"a c {y} L{y}",
                f"b c {y} L{y}",
                f"d e {y} R{y}",
                f"c d {y} B{y}",
            ]
        corpus = corpus_from_edge_list(lines)
        result = run_case_study(
            corpus,
            AuthorId("a"),
            config=CaseStudyConfig(replica_counts=(1, 2), n_runs=3, hops=2),
            seed=1,
        )
        assert len(result.subgraphs) == 3
