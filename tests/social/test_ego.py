"""Unit tests for repro.social.ego."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.ids import AuthorId
from repro.social.ego import ego_corpus, ego_network, hop_distances
from repro.social.graph import build_coauthorship_graph

from ..conftest import pub
from repro.social.records import Corpus


@pytest.fixture
def chain_corpus():
    """a-b, b-c, c-d, d-e: a 4-hop chain."""
    return Corpus(
        [
            pub("p1", 2009, "a", "b"),
            pub("p2", 2009, "b", "c"),
            pub("p3", 2009, "c", "d"),
            pub("p4", 2009, "d", "e"),
        ]
    )


class TestEgoCorpus:
    def test_zero_hops_keeps_only_seed_pubs(self, chain_corpus):
        ego = ego_corpus(chain_corpus, AuthorId("a"), hops=0)
        assert {p.pub_id for p in ego} == {"p1"}

    def test_hop_expansion(self, chain_corpus):
        # 1 hop: members {a, b} -> pubs touching a or b = p1, p2
        ego1 = ego_corpus(chain_corpus, AuthorId("a"), hops=1)
        assert {p.pub_id for p in ego1} == {"p1", "p2"}
        # 2 hops: members {a,b,c} -> p1..p3
        ego2 = ego_corpus(chain_corpus, AuthorId("a"), hops=2)
        assert {p.pub_id for p in ego2} == {"p1", "p2", "p3"}
        # 3 hops (the paper's setting): members {a..d} -> all pubs
        ego3 = ego_corpus(chain_corpus, AuthorId("a"), hops=3)
        assert {p.pub_id for p in ego3} == {"p1", "p2", "p3", "p4"}

    def test_boundary_authors_retained_in_author_lists(self, chain_corpus):
        # e is 4 hops out but appears on p4, which enters via d (3 hops)
        ego3 = ego_corpus(chain_corpus, AuthorId("a"), hops=3)
        assert AuthorId("e") in ego3.author_ids

    def test_expansion_stops_early_when_saturated(self, tiny_corpus):
        ego = ego_corpus(tiny_corpus, AuthorId("alice"), hops=50)
        # eve/frank island is unreachable from alice
        assert ego.author_ids == {"alice", "bob", "carol", "dave"}

    def test_unknown_seed_raises(self, chain_corpus):
        with pytest.raises(GraphError):
            ego_corpus(chain_corpus, AuthorId("zz"), hops=3)

    def test_negative_hops_raises(self, chain_corpus):
        with pytest.raises(GraphError):
            ego_corpus(chain_corpus, AuthorId("a"), hops=-1)


class TestEgoNetwork:
    def test_graph_level_extraction(self, chain_corpus):
        g = build_coauthorship_graph(chain_corpus)
        ego = ego_network(g, AuthorId("a"), hops=2)
        assert set(ego.nodes()) == {"a", "b", "c"}
        assert ego.seed == "a"

    def test_unknown_seed_raises(self, chain_corpus):
        g = build_coauthorship_graph(chain_corpus)
        with pytest.raises(GraphError):
            ego_network(g, AuthorId("zz"))


class TestHopDistances:
    def test_single_source(self, chain_corpus):
        g = build_coauthorship_graph(chain_corpus)
        dist = hop_distances(g, {AuthorId("a")})
        assert dist == {"a": 0, "b": 1, "c": 2, "d": 3, "e": 4}

    def test_multi_source_takes_minimum(self, chain_corpus):
        g = build_coauthorship_graph(chain_corpus)
        dist = hop_distances(g, {AuthorId("a"), AuthorId("e")})
        assert dist["c"] == 2
        assert dist["b"] == 1
        assert dist["d"] == 1

    def test_unreachable_nodes_absent(self, tiny_corpus):
        g = build_coauthorship_graph(tiny_corpus)
        dist = hop_distances(g, {AuthorId("alice")})
        assert "eve" not in dist and "frank" not in dist

    def test_unknown_source_raises(self, chain_corpus):
        g = build_coauthorship_graph(chain_corpus)
        with pytest.raises(GraphError):
            hop_distances(g, {AuthorId("zz")})


class TestSyntheticEgo:
    def test_three_hop_ego_is_proper_subset(self, synthetic):
        corpus, seed = synthetic
        ego = ego_corpus(corpus, seed, hops=3)
        assert 0 < len(ego) <= len(corpus)
        assert seed in ego.author_ids

    def test_monotone_in_hops(self, synthetic):
        corpus, seed = synthetic
        sizes = [len(ego_corpus(corpus, seed, hops=h).author_ids) for h in range(4)]
        assert sizes == sorted(sizes)
