"""Unit tests for repro.social.metrics."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.ids import AuthorId
from repro.social.graph import CoauthorshipGraph, build_coauthorship_graph
from repro.social.metrics import (
    betweenness,
    closeness,
    clustering_coefficients,
    degree_vector,
    graph_summary,
    pagerank_scores,
)

from ..conftest import pub
from repro.social.records import Corpus


@pytest.fixture
def triangle_plus_tail():
    """Triangle a-b-c plus tail c-d: known clustering coefficients."""
    return build_coauthorship_graph(
        Corpus(
            [
                pub("p1", 2009, "a", "b"),
                pub("p2", 2009, "b", "c"),
                pub("p3", 2009, "a", "c"),
                pub("p4", 2009, "c", "d"),
            ]
        )
    )


class TestDegree:
    def test_degree_vector(self, triangle_plus_tail):
        assert degree_vector(triangle_plus_tail) == {"a": 2, "b": 2, "c": 3, "d": 1}


class TestClustering:
    def test_known_values(self, triangle_plus_tail):
        c = clustering_coefficients(triangle_plus_tail)
        assert c["a"] == pytest.approx(1.0)
        assert c["b"] == pytest.approx(1.0)
        assert c["c"] == pytest.approx(1 / 3)
        assert c["d"] == pytest.approx(0.0)

    def test_matches_networkx(self, synthetic):
        from repro.social.ego import ego_corpus

        corpus, seed = synthetic
        g = build_coauthorship_graph(ego_corpus(corpus, seed, hops=2))
        ours = clustering_coefficients(g)
        theirs = nx.clustering(g.nx)
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_empty_graph(self):
        g = CoauthorshipGraph(nx.Graph())
        assert clustering_coefficients(g) == {}

    def test_dense_fallback_agrees(self, triangle_plus_tail, monkeypatch):
        import repro.social.metrics as m

        dense = clustering_coefficients(triangle_plus_tail)
        monkeypatch.setattr(m, "_DENSE_LIMIT", 0)
        sparse = clustering_coefficients(triangle_plus_tail)
        for k in dense:
            assert dense[k] == pytest.approx(sparse[k])


class TestCentralities:
    def test_betweenness_center_of_star_highest(self):
        g = build_coauthorship_graph(
            Corpus([pub(f"p{i}", 2009, "hub", f"leaf{i}") for i in range(5)])
        )
        b = betweenness(g)
        assert b["hub"] == max(b.values())
        assert b["leaf0"] == pytest.approx(0.0)

    def test_betweenness_approximation_path(self, triangle_plus_tail):
        b = betweenness(triangle_plus_tail, approximate_above=1, n_pivots=4, seed=0)
        assert set(b) == {"a", "b", "c", "d"}

    def test_closeness_tail_lowest(self, triangle_plus_tail):
        c = closeness(triangle_plus_tail)
        assert c["d"] == min(c.values())

    def test_pagerank_sums_to_one(self, triangle_plus_tail):
        pr = pagerank_scores(triangle_plus_tail)
        assert sum(pr.values()) == pytest.approx(1.0)

    def test_pagerank_weighted_favors_repeat_collaborators(self):
        # b repeats with a (weight 3); c has single links to both
        corpus = Corpus(
            [
                pub("p1", 2009, "a", "b"),
                pub("p2", 2009, "a", "b"),
                pub("p3", 2010, "a", "b"),
                pub("p4", 2010, "a", "c"),
                pub("p5", 2010, "b", "c"),
            ]
        )
        g = build_coauthorship_graph(corpus)
        pr = pagerank_scores(g, weighted=True)
        assert pr["a"] > pr["c"] and pr["b"] > pr["c"]

    def test_empty_graph_scores(self):
        g = CoauthorshipGraph(nx.Graph())
        assert pagerank_scores(g) == {}
        assert betweenness(g) == {}


class TestGraphSummary:
    def test_fields(self, triangle_plus_tail):
        s = graph_summary(triangle_plus_tail)
        assert s.n_nodes == 4
        assert s.n_edges == 4
        assert s.n_components == 1
        assert s.n_islands == 0
        assert s.max_span == 2
        assert s.max_degree == 3
        assert s.mean_degree == pytest.approx(2.0)

    def test_islands_counted(self, tiny_corpus):
        g = build_coauthorship_graph(tiny_corpus)
        s = graph_summary(g)
        assert s.n_components == 2
        assert s.n_islands == 1

    def test_seed_degree(self, tiny_corpus):
        g = build_coauthorship_graph(tiny_corpus, seed=AuthorId("carol"))
        assert graph_summary(g).seed_degree == 3

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            graph_summary(CoauthorshipGraph(nx.Graph()))

    def test_as_row_round_trips(self, triangle_plus_tail):
        row = graph_summary(triangle_plus_tail).as_row()
        assert row[0] == 4 and row[1] == 4


class TestCaching:
    def test_clustering_cached_per_graph(self, triangle_plus_tail, monkeypatch):
        import networkx as _nx

        a = clustering_coefficients(triangle_plus_tail)
        # a second call must not recompute: poison the underlying kernels
        monkeypatch.setattr(
            _nx, "clustering", lambda *args, **kw: pytest.fail("cache missed")
        )
        monkeypatch.setattr(
            type(triangle_plus_tail),
            "adjacency_matrix",
            lambda self: pytest.fail("cache missed"),
        )
        b = clustering_coefficients(triangle_plus_tail)
        assert a == b

    def test_pagerank_cache_keyed_by_params(self, triangle_plus_tail, monkeypatch):
        import networkx as _nx

        a = pagerank_scores(triangle_plus_tail, alpha=0.85)
        monkeypatch.setattr(
            _nx, "pagerank", lambda *args, **kw: pytest.fail("cache missed")
        )
        b = pagerank_scores(triangle_plus_tail, alpha=0.85)
        assert a == b
        monkeypatch.undo()
        c = pagerank_scores(triangle_plus_tail, alpha=0.5)
        assert c != a

    def test_betweenness_cached_ignoring_seed(self, triangle_plus_tail, monkeypatch):
        import networkx as _nx

        a = betweenness(triangle_plus_tail, seed=1)
        monkeypatch.setattr(
            _nx,
            "betweenness_centrality",
            lambda *args, **kw: pytest.fail("cache missed"),
        )
        b = betweenness(triangle_plus_tail, seed=999)
        assert a == b

    def test_new_graph_object_not_cached(self, tiny_corpus):
        g1 = build_coauthorship_graph(tiny_corpus)
        g2 = build_coauthorship_graph(tiny_corpus)
        a = clustering_coefficients(g1)
        b = clustering_coefficients(g2)
        assert a is not b
        assert a == b

    def test_subgraph_misses_cache(self, triangle_plus_tail):
        """A subgraph is a new nx.Graph object: its scores are computed
        fresh, never served from the parent's cache entry."""
        full = clustering_coefficients(triangle_plus_tail)
        sub = triangle_plus_tail.subgraph(list(triangle_plus_tail.nodes())[:3])
        sub_scores = clustering_coefficients(sub)
        assert set(sub_scores) == set(sub.nodes())
        assert set(sub_scores) != set(full)

    def test_cached_dicts_are_defensive_copies(self, triangle_plus_tail):
        """Mutating a returned dict must not poison the cache."""
        a = clustering_coefficients(triangle_plus_tail)
        victim = next(iter(a))
        a[victim] = 123.0
        assert clustering_coefficients(triangle_plus_tail)[victim] != 123.0

        p = pagerank_scores(triangle_plus_tail)
        p.clear()
        assert pagerank_scores(triangle_plus_tail)  # still populated

        bt = betweenness(triangle_plus_tail)
        bt[next(iter(bt))] = -1.0
        assert betweenness(triangle_plus_tail) != bt
