"""Unit tests for repro.social.trust (Table I heuristics)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId
from repro.social.ego import ego_corpus
from repro.social.trust import (
    BaselineTrust,
    CompositeTrust,
    MaxAuthorsTrust,
    MinCoauthorshipTrust,
    paper_trust_heuristics,
)


class TestBaseline:
    def test_keeps_all_connected_nodes(self, tiny_corpus):
        sub = BaselineTrust().prune(tiny_corpus)
        assert sub.n_nodes == 6
        assert sub.n_edges == 6

    def test_surviving_publications_have_edges(self, tiny_corpus):
        sub = BaselineTrust().prune(tiny_corpus)
        # all 7 pubs are multi-author, all survive
        assert sub.n_publications == 7

    def test_single_author_pubs_do_not_survive(self):
        from ..conftest import pub
        from repro.social.records import Corpus

        corpus = Corpus([pub("s", 2009, "solo"), pub("d", 2009, "a", "b")])
        sub = BaselineTrust().prune(corpus)
        assert sub.n_publications == 1
        assert "solo" not in sub.graph.nx

    def test_table_row_format(self, tiny_corpus):
        name, nodes, pubs, edges = BaselineTrust().prune(tiny_corpus).table_row()
        assert name == "baseline"
        assert (nodes, pubs, edges) == (6, 7, 6)


class TestMinCoauthorship:
    def test_double_coauthorship_prunes_weak_edges(self, tiny_corpus):
        sub = MinCoauthorshipTrust(2).prune(tiny_corpus)
        # only alice-bob has weight 2
        assert sub.n_nodes == 2
        assert sub.n_edges == 1
        assert sub.n_publications == 2  # p1, p2

    def test_min_count_one_equals_baseline(self, tiny_corpus):
        base = BaselineTrust().prune(tiny_corpus)
        one = MinCoauthorshipTrust(1).prune(tiny_corpus)
        assert one.n_nodes == base.n_nodes
        assert one.n_edges == base.n_edges

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MinCoauthorshipTrust(0)

    def test_name(self):
        assert MinCoauthorshipTrust(2).name == "double-coauthorship"
        assert MinCoauthorshipTrust(3).name == "min-coauthorship-3"

    def test_seed_retained_even_if_isolated(self, tiny_corpus):
        sub = MinCoauthorshipTrust(2).prune(tiny_corpus, seed=AuthorId("carol"))
        assert "carol" in sub.graph.nx
        assert sub.graph.seed == "carol"


class TestMaxAuthors:
    def test_drops_large_publications(self, mega_corpus):
        sub = MaxAuthorsTrust(5).prune(mega_corpus)
        # the 10-author paper is gone; survivors: m0-x (s1,s2), x-y (s3), m1-y (s4)
        assert sub.n_publications == 4
        assert set(sub.graph.nodes()) == {"m0", "m1", "x", "y"}

    def test_mega_paper_authors_without_small_pubs_drop_out(self, mega_corpus):
        sub = MaxAuthorsTrust(5).prune(mega_corpus)
        for i in range(2, 10):
            assert f"m{i}" not in sub.graph.nx

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            MaxAuthorsTrust(0)

    def test_name(self):
        assert MaxAuthorsTrust(5).name == "number-of-authors"
        assert MaxAuthorsTrust(10).name == "max-authors-10"


class TestComposite:
    def test_composition_order(self, mega_corpus):
        comp = CompositeTrust([MaxAuthorsTrust(5), MinCoauthorshipTrust(2)])
        sub = comp.prune(mega_corpus)
        # after max-authors: edges m0-x(2), x-y(1), m1-y(1); then >=2 keeps m0-x
        assert set(sub.graph.nodes()) == {"m0", "x"}
        assert sub.n_publications == 2

    def test_empty_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeTrust([])

    def test_default_name_joins_stages(self):
        comp = CompositeTrust([BaselineTrust(), MaxAuthorsTrust(5)])
        assert comp.name == "baseline+number-of-authors"


class TestPaperHeuristics:
    def test_returns_three_in_table_order(self):
        names = [h.name for h in paper_trust_heuristics()]
        assert names == ["baseline", "double-coauthorship", "number-of-authors"]

    def test_table1_shape_on_synthetic_ego(self, synthetic):
        """Table I reproduction: rows strictly shrink across prunings."""
        corpus, seed = synthetic
        ego = ego_corpus(corpus, seed, hops=3)
        rows = [h.prune(ego, seed=seed).table_row() for h in paper_trust_heuristics()]
        nodes = [r[1] for r in rows]
        pubs = [r[2] for r in rows]
        edges = [r[3] for r in rows]
        assert nodes[0] > nodes[1] > 0
        assert nodes[0] > nodes[2] > 0
        assert edges[0] > edges[1] and edges[0] > edges[2]
        assert pubs[0] >= pubs[1] and pubs[0] > pubs[2]

    def test_double_coauthorship_has_islands_on_synthetic(self, synthetic):
        """Fig. 2(b): pruning by repeated coauthorship creates islands."""
        corpus, seed = synthetic
        ego = ego_corpus(corpus, seed, hops=3)
        sub = MinCoauthorshipTrust(2).prune(ego, seed=seed)
        assert sub.graph.n_components() > 1


class TestSharedGraphMemo:
    """The base-graph memoization behind the trust heuristics.

    All heuristics fetch their full coauthorship graph through
    :func:`repro.social.graph.shared_coauthorship_graph`, memoized by
    corpus identity — so Table I's three prunings over one ego corpus
    build the base graph once, and pruning results are unchanged whether
    the graph is shared, passed in prebuilt, or rebuilt fresh.
    """

    def test_same_corpus_object_shares_graph(self, tiny_corpus):
        from repro.social.graph import shared_coauthorship_graph

        assert shared_coauthorship_graph(tiny_corpus) is shared_coauthorship_graph(
            tiny_corpus
        )

    def test_equal_but_distinct_corpus_builds_fresh(self, synthetic):
        from repro.social.ego import ego_corpus
        from repro.social.graph import shared_coauthorship_graph

        corpus, seed = synthetic
        e1 = ego_corpus(corpus, seed, hops=2)
        e2 = ego_corpus(corpus, seed, hops=2)
        assert e1 is not e2
        assert shared_coauthorship_graph(e1) is not shared_coauthorship_graph(e2)

    def test_heuristics_do_not_mutate_shared_graph(self, tiny_corpus):
        from repro.social.graph import shared_coauthorship_graph

        shared = shared_coauthorship_graph(tiny_corpus)
        n_edges_before = shared.n_edges
        MinCoauthorshipTrust(2).prune(tiny_corpus)
        BaselineTrust().prune(tiny_corpus)
        assert shared_coauthorship_graph(tiny_corpus) is shared
        assert shared.n_edges == n_edges_before

    def test_prebuilt_graph_gives_identical_pruning(self, synthetic):
        from repro.social.graph import build_coauthorship_graph

        corpus, seed = synthetic
        ego = ego_corpus(corpus, seed, hops=2)
        prebuilt = build_coauthorship_graph(ego)
        for heuristic in paper_trust_heuristics():
            with_graph = heuristic.prune(ego, seed=seed, graph=prebuilt)
            without = heuristic.prune(ego, seed=seed)
            assert with_graph.table_row() == without.table_row()
            assert set(with_graph.graph.nodes()) == set(without.graph.nodes())
            assert set(with_graph.graph.nx.edges()) == set(without.graph.nx.edges())

    def test_composed_pruning_unchanged_with_prebuilt_graph(self, synthetic):
        from repro.social.graph import build_coauthorship_graph

        corpus, seed = synthetic
        ego = ego_corpus(corpus, seed, hops=2)
        comp = CompositeTrust([MaxAuthorsTrust(5), MinCoauthorshipTrust(2)])
        with_graph = comp.prune(ego, seed=seed, graph=build_coauthorship_graph(ego))
        without = comp.prune(ego, seed=seed)
        assert with_graph.table_row() == without.table_row()
        assert set(with_graph.graph.nx.edges()) == set(without.graph.nx.edges())
