"""Unit tests for repro.social.trust_model."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId
from repro.social.trust_model import InteractionRecord, TrustModel

A, B, C = AuthorId("a"), AuthorId("b"), AuthorId("c")


def rec(a, b, kind, time, weight=1.0):
    return InteractionRecord(a=a, b=b, kind=kind, time=time, weight=weight)


class TestRecording:
    def test_score_zero_without_interactions(self):
        m = TrustModel()
        assert m.score(A, B) == 0.0

    def test_publication_accumulates(self):
        m = TrustModel()
        m.record(rec(A, B, "publication", 2009))
        m.record(rec(A, B, "publication", 2010))
        assert m.score(A, B) == pytest.approx(2.0)

    def test_pair_is_unordered(self):
        m = TrustModel()
        m.record(rec(A, B, "publication", 2009))
        assert m.score(B, A) == m.score(A, B) > 0

    def test_unknown_kind_rejected(self):
        m = TrustModel()
        with pytest.raises(ConfigurationError):
            m.record(rec(A, B, "bribery", 2009))

    def test_self_interaction_rejected(self):
        m = TrustModel()
        with pytest.raises(ConfigurationError):
            m.record(rec(A, A, "publication", 2009))

    def test_self_score_zero(self):
        m = TrustModel()
        assert m.score(A, A) == 0.0

    def test_failure_reduces_score_clamped_at_zero(self):
        m = TrustModel()
        m.record(rec(A, B, "exchange-success", 1.0))
        m.record(rec(A, B, "exchange-failure", 2.0))
        assert m.score(A, B) == 0.0  # 0.5 - 1.0 clamps to 0

    def test_interaction_count(self):
        m = TrustModel()
        m.record(rec(A, B, "publication", 2009))
        m.record(rec(A, B, "exchange-success", 2010))
        assert m.interaction_count(A, B) == 2
        assert m.interaction_count(A, C) == 0


class TestDecay:
    def test_half_life(self):
        m = TrustModel(half_life=1.0)
        m.record(rec(A, B, "publication", 0.0))
        m.advance_to(1.0)
        assert m.score(A, B) == pytest.approx(0.5)
        m.advance_to(3.0)
        assert m.score(A, B) == pytest.approx(0.125)

    def test_infinite_half_life_no_decay(self):
        m = TrustModel(half_life=math.inf)
        m.record(rec(A, B, "publication", 0.0))
        m.advance_to(1000.0)
        assert m.score(A, B) == pytest.approx(1.0)

    def test_score_at_explicit_time(self):
        m = TrustModel(half_life=1.0)
        m.record(rec(A, B, "publication", 0.0))
        assert m.score(A, B, at=2.0) == pytest.approx(0.25)

    def test_clock_never_goes_backward(self):
        m = TrustModel()
        m.advance_to(5.0)
        with pytest.raises(ConfigurationError):
            m.advance_to(4.0)

    def test_record_advances_clock(self):
        m = TrustModel()
        m.record(rec(A, B, "publication", 7.0))
        assert m.now == 7.0

    def test_invalid_half_life(self):
        with pytest.raises(ConfigurationError):
            TrustModel(half_life=0.0)


class TestCorpusIngestion:
    def test_discount_large_publications(self, mega_corpus):
        m = TrustModel()
        m.record_corpus(mega_corpus)
        # m0-x coauthored two 2-author papers (weight 1 each) plus the
        # 10-author paper (weight 1/9)
        assert m.score(AuthorId("m0"), AuthorId("x")) == pytest.approx(2.0)
        # m2-m3 only share the big paper
        assert m.score(AuthorId("m2"), AuthorId("m3")) == pytest.approx(1 / 9)

    def test_no_discount(self, mega_corpus):
        m = TrustModel()
        m.record_corpus(mega_corpus, discount_large=False)
        assert m.score(AuthorId("m2"), AuthorId("m3")) == pytest.approx(1.0)


class TestTrustedPeers:
    def test_sorted_best_first(self):
        m = TrustModel()
        m.record(rec(A, B, "publication", 2009))
        m.record(rec(A, B, "publication", 2010))
        m.record(rec(A, C, "publication", 2010))
        peers = m.trusted_peers(A)
        assert [p for p, _ in peers] == [B, C]

    def test_threshold_filters(self):
        m = TrustModel()
        m.record(rec(A, C, "publication", 2010))
        assert m.trusted_peers(A, threshold=1.5) == []
