"""Unit tests for repro.social.graph."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.ids import AuthorId
from repro.social.graph import (
    CoauthorshipGraph,
    build_coauthorship_graph,
    ordered_induced_view,
)
from repro.social.records import Corpus

from ..conftest import pub


@pytest.fixture
def tiny_graph(tiny_corpus):
    return build_coauthorship_graph(tiny_corpus, seed=AuthorId("alice"))


class TestBuild:
    def test_counts(self, tiny_graph):
        assert tiny_graph.n_nodes == 6
        # edges: alice-bob, alice-carol, bob-carol, carol-dave, eve-frank, bob-dave
        assert tiny_graph.n_edges == 6

    def test_edge_weights(self, tiny_graph):
        assert tiny_graph.edge_weight(AuthorId("alice"), AuthorId("bob")) == 2
        assert tiny_graph.edge_weight(AuthorId("bob"), AuthorId("carol")) == 1
        assert tiny_graph.edge_weight(AuthorId("alice"), AuthorId("dave")) == 0

    def test_min_weight_pruning(self, tiny_corpus):
        g = build_coauthorship_graph(tiny_corpus, min_weight=2)
        assert g.n_edges == 1
        assert g.edge_weight(AuthorId("alice"), AuthorId("bob")) == 2

    def test_seed_must_exist(self, tiny_corpus):
        with pytest.raises(GraphError):
            build_coauthorship_graph(tiny_corpus, seed=AuthorId("nobody"))

    def test_edges_carry_publication_ids(self, tiny_graph):
        data = tiny_graph.nx.get_edge_data("alice", "bob")
        assert set(data["pubs"]) == {"p1", "p2"}

    def test_directed_graph_rejected(self):
        with pytest.raises(GraphError):
            CoauthorshipGraph(nx.DiGraph())


class TestQueries:
    def test_neighbors(self, tiny_graph):
        assert set(tiny_graph.neighbors(AuthorId("carol"))) == {"alice", "bob", "dave"}

    def test_neighbors_unknown_raises(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.neighbors(AuthorId("nobody"))

    def test_degree(self, tiny_graph):
        assert tiny_graph.degree(AuthorId("carol")) == 3
        assert tiny_graph.degree(AuthorId("eve")) == 1

    def test_degree_unknown_raises(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.degree(AuthorId("nobody"))

    def test_contains_and_len(self, tiny_graph):
        assert AuthorId("alice") in tiny_graph
        assert "nobody" not in tiny_graph
        assert len(tiny_graph) == 6

    def test_edges_iteration(self, tiny_graph):
        edges = {(a, b): w for a, b, w in tiny_graph.edges()}
        assert len(edges) == 6
        assert all(w >= 1 for w in edges.values())


class TestStructure:
    def test_connected_components_largest_first(self, tiny_graph):
        comps = tiny_graph.connected_components()
        assert len(comps) == 2
        assert comps[0] == {"alice", "bob", "carol", "dave"}
        assert comps[1] == {"eve", "frank"}

    def test_n_components(self, tiny_graph):
        assert tiny_graph.n_components() == 2

    def test_max_span(self, tiny_graph):
        # longest shortest path: alice-dave = 2 hops
        assert tiny_graph.max_span() == 2

    def test_max_span_no_edges(self, tiny_corpus):
        g = build_coauthorship_graph(tiny_corpus, min_weight=99)
        assert g.max_span() == 0

    def test_subgraph(self, tiny_graph):
        sub = tiny_graph.subgraph([AuthorId("alice"), AuthorId("bob"), AuthorId("eve")])
        assert sub.n_nodes == 3
        assert sub.n_edges == 1
        assert sub.seed == "alice"

    def test_subgraph_drops_seed_when_excluded(self, tiny_graph):
        sub = tiny_graph.subgraph([AuthorId("eve"), AuthorId("frank")])
        assert sub.seed is None

    def test_subgraph_unknown_node_raises(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.subgraph([AuthorId("nobody")])

    def test_subgraph_view_matches_subgraph(self, tiny_graph):
        nodes = [AuthorId("alice"), AuthorId("bob"), AuthorId("eve")]
        view = tiny_graph.subgraph_view(nodes)
        copy = tiny_graph.subgraph(nodes)
        assert list(view.nx.nodes()) == list(copy.nx.nodes())
        assert sorted(map(sorted, view.nx.edges())) == sorted(
            map(sorted, copy.nx.edges())
        )
        assert view.seed == copy.seed == "alice"

    def test_subgraph_view_unknown_node_raises(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.subgraph_view([AuthorId("nobody")])

    def test_subgraph_order_is_base_order_not_input_order(self, tiny_graph):
        """Subgraphs iterate in base-graph insertion order regardless of
        how the node subset is ordered (or hashed) — the property the
        cross-process determinism contract rests on."""
        base = [n for n in tiny_graph.nx if n in {"alice", "bob", "eve"}]
        for request in (["eve", "alice", "bob"], ["bob", "eve", "alice"]):
            nodes = [AuthorId(n) for n in request]
            assert list(tiny_graph.subgraph_view(nodes).nx.nodes()) == base
            assert list(tiny_graph.subgraph(nodes).nx.nodes()) == base

    def test_ordered_induced_view_small_subset(self, tiny_graph):
        """The small-subset regime is where raw nx.subgraph iterates the
        filter set (hash order); ours must stay in base order."""
        g = tiny_graph.nx
        subset = {"eve", "frank"}
        view = ordered_induced_view(g, subset)
        assert list(view.nodes()) == [n for n in g if n in subset]
        assert view.number_of_edges() == 1

    def test_publications_on_edges(self, tiny_graph):
        assert tiny_graph.publications_on_edges() == {
            "p1", "p2", "p3", "p4", "p5", "p6", "p7",
        }


class TestNumpyBridge:
    def test_adjacency_symmetric(self, tiny_graph):
        mat = tiny_graph.adjacency_matrix()
        assert mat.shape == (6, 6)
        assert np.array_equal(mat, mat.T)
        assert not mat.diagonal().any()

    def test_adjacency_matches_edges(self, tiny_graph):
        mat = tiny_graph.adjacency_matrix()
        assert int(mat.sum()) == 2 * tiny_graph.n_edges

    def test_node_index_is_dense(self, tiny_graph):
        idx = tiny_graph.node_index()
        assert sorted(idx.values()) == list(range(6))


class TestLargeSpan:
    def _chain(self, n):
        pubs = [pub(f"p{i}", 2009, f"a{i}", f"a{i+1}") for i in range(n - 1)]
        return build_coauthorship_graph(Corpus(pubs))

    def test_double_sweep_exact_on_long_path(self):
        # 700 nodes > the exact-eccentricity threshold; double sweep is
        # exact on trees, so the path's diameter must come back exactly
        g = self._chain(700)
        assert g.max_span() == 699

    def test_double_sweep_on_large_cycle(self):
        import networkx as nx
        from repro.social.graph import CoauthorshipGraph, _double_sweep_diameter

        g = nx.cycle_graph(800)
        assert _double_sweep_diameter(g) == 400
