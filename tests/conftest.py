"""Shared fixtures: hand-built corpora small enough to reason about exactly,
plus one session-scoped synthetic corpus for integration-style tests."""

from __future__ import annotations

import pytest

from repro.ids import AuthorId, PublicationId
from repro.social import CorpusConfig, generate_corpus
from repro.social.records import Corpus, Publication


def pub(pid: str, year: int, *authors: str) -> Publication:
    """Shorthand publication constructor used across the test suite."""
    return Publication(
        pub_id=PublicationId(pid),
        year=year,
        authors=frozenset(AuthorId(a) for a in authors),
    )


@pytest.fixture
def tiny_corpus() -> Corpus:
    """Six authors, seven publications over 2009-2011.

    Structure (coauthorship edges, weight in parens):

        alice -(2)- bob -(1)- carol -(1)- dave
        alice -(1)- carol
        eve  -(1)- frank            (separate island)
        and one 2011 paper bob+dave (test year)

    Designed so every trust heuristic produces a different subgraph.
    """
    return Corpus(
        [
            pub("p1", 2009, "alice", "bob"),
            pub("p2", 2010, "alice", "bob"),
            pub("p3", 2009, "bob", "carol"),
            pub("p4", 2010, "alice", "carol"),
            pub("p5", 2010, "carol", "dave"),
            pub("p6", 2009, "eve", "frank"),
            pub("p7", 2011, "bob", "dave"),
        ]
    )


@pytest.fixture
def mega_corpus() -> Corpus:
    """A corpus with one 10-author publication and a small core, to test
    the max-authors pruning and mega-paper degree effects deterministically."""
    big_authors = [f"m{i}" for i in range(10)]
    return Corpus(
        [
            pub("big", 2009, *big_authors),
            pub("s1", 2009, "m0", "x"),
            pub("s2", 2010, "m0", "x"),
            pub("s3", 2010, "x", "y"),
            pub("s4", 2011, "m1", "y"),
        ]
    )


@pytest.fixture(scope="session")
def synthetic():
    """Session-scoped synthetic corpus (small config for test speed).

    Returns ``(corpus, seed_author)``.
    """
    cfg = CorpusConfig(
        n_groups=60,
        n_consortium=300,
        mega_paper_size=30,
        consortium_block_size=30,
    )
    return generate_corpus(cfg, seed=1234)
