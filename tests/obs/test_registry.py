"""Unit tests for the obs registry, snapshot export, and report renderer."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    SNAPSHOT_SCHEMA,
    get_registry,
    render_report,
    set_registry,
)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = Registry()
        c1 = reg.counter("a.b", help="first wins")
        c2 = reg.counter("a.b", help="ignored")
        assert c1 is c2
        assert c1.help == "first wins"

    def test_type_conflict_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.histogram("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Registry().counter("")

    def test_typed_views(self):
        reg = Registry()
        reg.counter("c")
        reg.gauge("g")
        reg.histogram("h")
        assert set(reg.counters()) == {"c"}
        assert set(reg.gauges()) == {"g"}
        assert set(reg.histograms()) == {"h"}
        assert reg.names() == ["c", "g", "h"]
        assert isinstance(reg.get("c"), Counter)
        assert isinstance(reg.get("g"), Gauge)
        assert isinstance(reg.get("h"), Histogram)
        assert reg.get("nope") is None

    def test_snapshot_layout(self):
        reg = Registry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        reg.trace("ev", ts=3.0, x=1)
        snap = reg.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["counters"]["c"]["value"] == 2
        assert snap["gauges"]["g"]["value"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["trace"][0]["kind"] == "ev"
        assert snap["trace_dropped"] == 0

    def test_json_roundtrip(self, tmp_path):
        reg = Registry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        reg.trace("ev", node="n")
        path = tmp_path / "obs.json"
        reg.to_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(reg.snapshot()))

    def test_reset(self):
        reg = Registry()
        reg.counter("c").inc()
        reg.trace("ev")
        reg.reset()
        assert reg.names() == []
        assert len(reg.traces) == 0

    def test_trace_capacity_configurable(self):
        reg = Registry(trace_capacity=2)
        for i in range(4):
            reg.trace("ev", n=i)
        assert reg.traces.dropped == 2


class TestGlobalRegistry:
    def test_get_set_roundtrip(self):
        original = get_registry()
        fresh = Registry()
        try:
            previous = set_registry(fresh)
            assert previous is original
            assert get_registry() is fresh
        finally:
            set_registry(original)

    def test_set_rejects_non_registry(self):
        with pytest.raises(ConfigurationError):
            set_registry(object())  # type: ignore[arg-type]


class TestRenderReport:
    def _snapshot(self):
        reg = Registry()
        reg.counter("requests", help="reqs").inc(5)
        reg.gauge("load").set(2.0)
        h = reg.histogram("latency_s", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.05):
            h.observe(v)
        reg.trace("resolve", ts=1.0, node="n1")
        return reg.snapshot()

    def test_sections_present(self):
        text = render_report(self._snapshot(), trace_tail=5)
        assert "== counters ==" in text
        assert "requests" in text
        assert "== gauges ==" in text
        assert "== histograms ==" in text
        assert "latency_s" in text
        assert "== trace" in text
        assert "resolve" in text

    def test_trace_omitted_by_default(self):
        assert "== trace" not in render_report(self._snapshot())

    def test_bars(self):
        text = render_report(self._snapshot(), bars=True)
        assert "#" in text

    def test_empty_registry(self):
        assert render_report(Registry().snapshot()) == "(empty registry)"
