"""Unit tests for the trace-event ring buffer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import TraceRing


class TestTraceRing:
    def test_append_and_order(self):
        ring = TraceRing(8)
        for i in range(3):
            ring.append("tick", ts=float(i), n=i)
        events = ring.events()
        assert [e.fields["n"] for e in events] == [0, 1, 2]
        assert [e.seq for e in events] == [0, 1, 2]
        assert len(ring) == 3
        assert ring.dropped == 0

    def test_wraps_and_counts_drops(self):
        ring = TraceRing(3)
        for i in range(5):
            ring.append("tick", n=i)
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [e.fields["n"] for e in ring.events()] == [2, 3, 4]
        # sequence numbers keep increasing across wraps
        assert [e.seq for e in ring.events()] == [2, 3, 4]

    def test_kind_filter_and_tail(self):
        ring = TraceRing(10)
        ring.append("a", n=1)
        ring.append("b", n=2)
        ring.append("a", n=3)
        assert [e.fields["n"] for e in ring.events(kind="a")] == [1, 3]
        assert [e.fields["n"] for e in ring.tail(2)] == [2, 3]
        assert ring.tail(0) == []

    def test_clear(self):
        ring = TraceRing(2)
        ring.append("a")
        ring.append("a")
        ring.append("a")
        ring.clear()
        assert len(ring) == 0
        assert ring.dropped == 0
        ev = ring.append("b")
        assert ev.seq == 3  # sequence survives clears

    def test_snapshot_is_flat_dicts(self):
        ring = TraceRing(4)
        ring.append("resolve", ts=1.5, node="n1", hops=2)
        snap = ring.snapshot()
        assert snap == [{"seq": 0, "ts": 1.5, "kind": "resolve", "node": "n1", "hops": 2}]

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            TraceRing(0)
