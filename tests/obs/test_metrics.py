"""Unit tests for the obs instruments (counters, gauges, histograms, timers)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    exponential_buckets,
    linear_buckets,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        c = Counter("x")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("x", help="things")
        c.inc(3)
        assert c.snapshot() == {"value": 3, "help": "things"}


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("load")
        g.set(10.0)
        g.add(-2.5)
        assert g.value == 7.5
        assert g.snapshot()["value"] == 7.5


class TestBucketFactories:
    def test_exponential(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_linear(self):
        assert linear_buckets(0.0, 1.0, 4) == (0.0, 1.0, 2.0, 3.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ConfigurationError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ConfigurationError):
            linear_buckets(0.0, 0.0, 4)


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram("lat", buckets=linear_buckets(0.0, 1.0, 10))
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_empty_histogram_is_all_zeros(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.min == 0.0
        assert h.max == 0.0
        assert h.quantile(0.95) == 0.0

    def test_overflow_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(100.0)
        bounds_counts = h.buckets()
        assert bounds_counts[-1] == (float("inf"), 1)
        assert h.snapshot()["buckets"] == {"+inf": 1}

    def test_quantiles_bracket_the_data(self):
        h = Histogram("lat", buckets=linear_buckets(0.0, 1.0, 101))
        for v in range(100):
            h.observe(float(v))
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert 40.0 <= h.quantile(0.5) <= 60.0
        assert 90.0 <= h.quantile(0.95) <= 99.0

    def test_quantile_validates(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat").quantile(1.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("lat", buckets=())

    def test_integer_values_land_in_exact_buckets(self):
        # hop distances: value k must land in the bucket with bound k
        h = Histogram("hops", buckets=linear_buckets(0.0, 1.0, 5))
        h.observe(0)
        h.observe(2)
        h.observe(2)
        counts = dict(h.buckets())
        assert counts[0.0] == 1
        assert counts[2.0] == 2

    def test_timer_records_elapsed(self):
        h = Histogram("t")
        with h.time():
            pass
        assert h.count == 1
        assert h.max >= 0.0

    def test_timer_records_on_exception(self):
        h = Histogram("t")
        with pytest.raises(ValueError):
            with h.time():
                raise ValueError("boom")
        assert h.count == 1

    def test_snapshot_shape(self):
        h = Histogram("lat", buckets=(1.0, 2.0), help="latency")
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 0.5
        assert snap["help"] == "latency"
        assert set(snap) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
            "buckets", "help",
        }
