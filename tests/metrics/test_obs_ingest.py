"""Tests for the obs -> metrics bridge: ``ingest_obs_snapshot`` and the
state-log availability helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics import MetricsCollector, node_availability
from repro.obs import Registry


class TestNodeAvailability:
    def test_always_online(self):
        assert node_availability([], 100.0) == 1.0

    def test_single_downtime_window(self):
        log = [(10.0, "offline"), (30.0, "online")]
        assert node_availability(log, 40.0) == 0.5

    def test_terminal_downtime(self):
        assert node_availability([(25.0, "offline")], 100.0) == 0.25

    def test_unsorted_log_is_sorted(self):
        log = [(30.0, "online"), (10.0, "offline")]
        assert node_availability(log, 40.0) == 0.5

    def test_transitions_past_horizon_ignored(self):
        log = [(10.0, "offline"), (50.0, "online")]
        assert node_availability(log, 20.0) == 0.5

    def test_duplicate_states_are_idempotent(self):
        log = [(10.0, "offline"), (15.0, "offline"), (30.0, "online")]
        assert node_availability(log, 40.0) == 0.5

    def test_horizon_validated(self):
        with pytest.raises(ConfigurationError):
            node_availability([], 0.0)


class TestIngestObsSnapshot:
    def _registry_with_traces(self):
        reg = Registry()
        reg.trace(
            "resolve", segment="s0", requester="alice", node="n1",
            hops=0, load=0, latency_s=0.001,
        )
        reg.trace(
            "resolve", segment="s0", requester="bob", node="n1",
            hops=3, load=1, latency_s=0.002,
        )
        reg.trace("resolve_failed", segment="s1", requester="carol")
        reg.trace("node_state", ts=5.0, node="n1", state="offline")
        reg.trace(
            "transfer", ts=6.0, source="n1", dest="n2", segment="s0",
            size_bytes=100, ok=True, duration_s=0.5, attempts=1,
        )
        reg.trace("hop_cache_invalidate", reason="register")  # unknown: skipped
        return reg

    def test_counts_and_routing(self):
        coll = MetricsCollector()
        n = coll.ingest_obs_snapshot(self._registry_with_traces().snapshot())
        assert n == 5  # everything except the unknown kind
        assert len(coll.requests) == 3
        assert len(coll.node_states) == 1
        assert len(coll.exchanges) == 1

    def test_resolve_outcomes(self):
        coll = MetricsCollector()
        coll.ingest_obs_snapshot(self._registry_with_traces().snapshot())
        by_requester = {r.requester: r for r in coll.requests}
        assert by_requester["alice"].outcome == "local"
        assert by_requester["alice"].duration_s == 0.001
        assert by_requester["bob"].outcome == "remote"
        assert by_requester["bob"].social_hops == 3
        assert by_requester["carol"].outcome == "failed"

    def test_transfer_updates_served_tallies(self):
        coll = MetricsCollector()
        coll.ingest_obs_snapshot(self._registry_with_traces().snapshot())
        assert coll.bytes_served == {"n1": 100}
        assert coll.bytes_consumed == {"n2": 100}

    def test_node_state_feeds_observed_availability(self):
        coll = MetricsCollector()
        coll.ingest_obs_snapshot(self._registry_with_traces().snapshot())
        assert coll.observed_availability("n1", 10.0) == 0.5

    def test_empty_snapshot(self):
        assert MetricsCollector().ingest_obs_snapshot({}) == 0
