"""Unit tests for repro.metrics.cdn_metrics and social_metrics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, NodeId, SegmentId
from repro.metrics.cdn_metrics import compute_cdn_metrics
from repro.metrics.collector import (
    AllocationOfferEvent,
    ExchangeEvent,
    MetricsCollector,
    NodeStateEvent,
    RequestEvent,
)
from repro.metrics.social_metrics import compute_social_metrics

N1, N2, N3 = NodeId("n1"), NodeId("n2"), NodeId("n3")
SEG = SegmentId("d:seg0")


def request(outcome="near", duration=1.0, t=0.0):
    return RequestEvent(t, AuthorId("a"), SEG, outcome, 1, duration)


class TestCDNMetrics:
    def test_empty_collector_defaults(self):
        r = compute_cdn_metrics(MetricsCollector(), horizon_s=100.0)
        assert r.availability == 1.0
        assert r.request_success_ratio == 1.0
        assert r.n_requests == 0
        assert r.mean_response_time_s == 0.0
        assert r.stability == 1.0

    def test_success_ratio(self):
        c = MetricsCollector()
        c.record_request(request("near"))
        c.record_request(request("failed"))
        r = compute_cdn_metrics(c, horizon_s=10.0)
        assert r.request_success_ratio == 0.5
        assert r.n_requests == 2

    def test_response_time_stats(self):
        c = MetricsCollector()
        for d in (1.0, 2.0, 3.0):
            c.record_request(request(duration=d))
        r = compute_cdn_metrics(c, horizon_s=10.0)
        assert r.mean_response_time_s == pytest.approx(2.0)
        assert r.p95_response_time_s == pytest.approx(2.9)

    def test_failed_requests_excluded_from_latency(self):
        c = MetricsCollector()
        c.record_request(request(duration=1.0))
        c.record_request(request("failed", duration=99.0))
        r = compute_cdn_metrics(c, horizon_s=10.0)
        assert r.mean_response_time_s == pytest.approx(1.0)

    def test_availability_averages_over_nodes(self):
        c = MetricsCollector()
        c.register_node(N1, capacity_bytes=100)
        c.register_node(N2, capacity_bytes=100)
        c.record_node_state(NodeStateEvent(0.0, N2, "offline"))
        r = compute_cdn_metrics(c, horizon_s=100.0)
        assert r.availability == pytest.approx(0.5)

    def test_redundancy_and_stability_from_snapshots(self):
        r = compute_cdn_metrics(
            MetricsCollector(), horizon_s=10.0, redundancy_snapshots=[2.0, 2.0, 2.0]
        )
        assert r.mean_redundancy == 2.0
        assert r.stability == pytest.approx(1.0)
        r2 = compute_cdn_metrics(
            MetricsCollector(), horizon_s=10.0, redundancy_snapshots=[3.0, 1.0]
        )
        assert r2.stability < 1.0

    def test_scalability_slope_detects_degradation(self):
        c = MetricsCollector()
        for i in range(20):
            c.record_request(request(duration=1.0 + 0.5 * i, t=float(i)))
        r = compute_cdn_metrics(c, horizon_s=30.0)
        assert r.scalability_slope > 0.01

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            compute_cdn_metrics(MetricsCollector(), horizon_s=0.0)


class TestSocialMetrics:
    def test_empty_defaults(self):
        r = compute_social_metrics(MetricsCollector())
        assert r.acceptance_rate == 1.0
        assert r.n_exchanges == 0
        assert r.freerider_ratio == 0.0

    def test_acceptance_and_immediacy(self):
        c = MetricsCollector()
        c.record_offer(AllocationOfferEvent(0.0, N1, SEG, True, 10.0))
        c.record_offer(AllocationOfferEvent(0.0, N2, SEG, True, 20.0))
        c.record_offer(AllocationOfferEvent(0.0, N3, SEG, False, 99.0))
        r = compute_social_metrics(c)
        assert r.acceptance_rate == pytest.approx(2 / 3)
        assert r.immediacy_s == pytest.approx(15.0)  # accepted only

    def test_exchange_ratio_and_volume(self):
        c = MetricsCollector()
        c.record_exchange(ExchangeEvent(0.0, N1, N2, SEG, 100, True, 1.0))
        c.record_exchange(ExchangeEvent(0.0, N1, N3, SEG, 50, False, 1.0))
        r = compute_social_metrics(c)
        assert r.n_exchanges == 2
        assert r.exchange_success_ratio == 0.5
        assert r.transaction_volume_bytes == 100

    def test_freerider_detection(self):
        c = MetricsCollector()
        c.register_node(N1, capacity_bytes=100)
        c.register_node(N2, capacity_bytes=100)
        c.register_node(N3, capacity_bytes=100)
        # n1 serves, n2 consumes only (freerider), n3 idle
        c.record_exchange(ExchangeEvent(0.0, N1, N2, SEG, 10, True, 1.0))
        r = compute_social_metrics(c)
        assert r.freerider_ratio == pytest.approx(1 / 3)

    def test_allocated_ratio(self):
        c = MetricsCollector()
        c.register_node(N1, capacity_bytes=100)
        c.register_node(N2, capacity_bytes=100)
        c.report_usage(N1, 50)
        r = compute_social_metrics(c)
        assert r.allocated_ratio == pytest.approx(0.25)

    def test_scarce_regions(self):
        c = MetricsCollector()
        c.register_node(N1, capacity_bytes=1000, region="us")
        c.register_node(N2, capacity_bytes=1000, region="eu")
        c.report_usage(N2, 950)  # eu has 50 free vs us 1000 free
        r = compute_social_metrics(c)
        assert r.scarce_location_ratio == pytest.approx(0.5)

    def test_no_scarcity_when_balanced(self):
        c = MetricsCollector()
        c.register_node(N1, capacity_bytes=1000, region="us")
        c.register_node(N2, capacity_bytes=1000, region="eu")
        r = compute_social_metrics(c)
        assert r.scarce_location_ratio == 0.0
