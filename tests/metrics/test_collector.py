"""Unit tests for repro.metrics.collector."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ids import AuthorId, NodeId, SegmentId
from repro.metrics.collector import (
    AllocationOfferEvent,
    ExchangeEvent,
    MetricsCollector,
    NodeStateEvent,
    RequestEvent,
)

N1, N2 = NodeId("n1"), NodeId("n2")
SEG = SegmentId("d:seg0")


def exchange(src=N1, dst=N2, size=100, ok=True, t=0.0):
    return ExchangeEvent(
        time=t, source=src, dest=dst, segment_id=SEG, size_bytes=size, ok=ok, duration_s=1.0
    )


class TestIngestion:
    def test_requests_recorded(self):
        c = MetricsCollector()
        c.record_request(
            RequestEvent(0.0, AuthorId("a"), SEG, "local", 0, 0.0)
        )
        assert len(c.requests) == 1

    def test_exchange_updates_served_consumed(self):
        c = MetricsCollector()
        c.record_exchange(exchange(size=100))
        c.record_exchange(exchange(size=50))
        assert c.bytes_served[N1] == 150
        assert c.bytes_consumed[N2] == 150

    def test_failed_exchange_not_tallied(self):
        c = MetricsCollector()
        c.record_exchange(exchange(ok=False))
        assert N1 not in c.bytes_served

    def test_negative_offer_delay_rejected(self):
        c = MetricsCollector()
        with pytest.raises(ConfigurationError):
            c.record_offer(
                AllocationOfferEvent(0.0, N1, SEG, True, -1.0)
            )

    def test_register_node_validation(self):
        c = MetricsCollector()
        with pytest.raises(ConfigurationError):
            c.register_node(N1, capacity_bytes=0)

    def test_report_usage_requires_registration(self):
        c = MetricsCollector()
        with pytest.raises(ConfigurationError):
            c.report_usage(N1, 10)
        c.register_node(N1, capacity_bytes=100)
        c.report_usage(N1, 10)
        assert c.used[N1] == 10
        with pytest.raises(ConfigurationError):
            c.report_usage(N1, -1)


class TestObservedAvailability:
    def test_no_events_means_fully_available(self):
        c = MetricsCollector()
        assert c.observed_availability(N1, 100.0) == 1.0

    def test_offline_window_counted(self):
        c = MetricsCollector()
        c.record_node_state(NodeStateEvent(20.0, N1, "offline"))
        c.record_node_state(NodeStateEvent(60.0, N1, "online"))
        assert c.observed_availability(N1, 100.0) == pytest.approx(0.6)

    def test_still_offline_at_horizon(self):
        c = MetricsCollector()
        c.record_node_state(NodeStateEvent(50.0, N1, "offline"))
        assert c.observed_availability(N1, 100.0) == pytest.approx(0.5)

    def test_departed_counts_as_offline(self):
        c = MetricsCollector()
        c.record_node_state(NodeStateEvent(25.0, N1, "departed"))
        assert c.observed_availability(N1, 100.0) == pytest.approx(0.25)

    def test_events_beyond_horizon_ignored(self):
        c = MetricsCollector()
        c.record_node_state(NodeStateEvent(150.0, N1, "offline"))
        assert c.observed_availability(N1, 100.0) == 1.0

    def test_duplicate_transitions_idempotent(self):
        c = MetricsCollector()
        c.record_node_state(NodeStateEvent(10.0, N1, "offline"))
        c.record_node_state(NodeStateEvent(20.0, N1, "offline"))
        c.record_node_state(NodeStateEvent(30.0, N1, "online"))
        assert c.observed_availability(N1, 100.0) == pytest.approx(0.8)

    def test_invalid_horizon(self):
        c = MetricsCollector()
        with pytest.raises(ConfigurationError):
            c.observed_availability(N1, 0.0)
