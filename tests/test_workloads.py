"""Tests for repro.workloads.medical."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.ids import AuthorId
from repro.scdn import SCDN, SCDNConfig
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.workloads.medical import (
    DTI_FA_PIPELINE,
    MB,
    MedicalImagingTrial,
    MedicalTrialConfig,
    ProcessingStage,
)

from .conftest import pub


@pytest.fixture
def trial_net():
    """Five sites, all mutually collaborating (one consortium paper)."""
    graph = build_coauthorship_graph(
        Corpus([pub("consortium", 2009, "lead", "s1", "s2", "s3", "s4")])
    )
    scdn = SCDN(
        graph,
        config=SCDNConfig(default_capacity_bytes=10**12, transfer_failure_prob=0.0),
        seed=0,
    )
    sites = [AuthorId(a) for a in ("lead", "s1", "s2", "s3", "s4")]
    for s in sites:
        scdn.join(s)
    return scdn, sites


SMALL = MedicalTrialConfig(
    n_subjects=4, sessions_per_subject=1, raw_session_bytes=10 * MB,
    segments_per_dataset=2, analyst_accesses_per_site=3,
)


class TestConfig:
    def test_dti_fa_pipeline_factor(self):
        cfg = MedicalTrialConfig()
        # paper: ~1.4 GB derived from a 100 MB session
        assert cfg.derived_bytes_per_session == pytest.approx(1.4 * 10**9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_subjects": 0},
            {"raw_session_bytes": 0},
            {"pipeline": ()},
            {"segments_per_dataset": 0},
            {"analyst_accesses_per_site": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            MedicalTrialConfig(**kwargs)

    def test_stage_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessingStage("bad", 0.0)


class TestTrial:
    def test_full_run(self, trial_net):
        scdn, sites = trial_net
        trial = MedicalImagingTrial(scdn, sites[0], sites, config=SMALL, seed=1)
        report = trial.run()
        assert report.n_sessions == 4
        # per session: 1 raw + len(pipeline) derived datasets
        assert report.n_datasets == 4 * (1 + len(DTI_FA_PIPELINE))
        assert report.n_access_failures == 0
        assert report.n_accesses > 0
        assert 0.0 <= report.locality_ratio <= 1.0

    def test_project_boundary_excludes_outsiders(self, trial_net):
        scdn, sites = trial_net
        trial = MedicalImagingTrial(scdn, sites[0], sites[:3], config=SMALL, seed=1)
        trial.enroll()
        trial.acquire_sessions()
        outsider = sites[4]
        assert not scdn.can_access(outsider, f"raw-{trial.sessions[0].session_id}")

    def test_pipeline_requires_sessions(self, trial_net):
        scdn, sites = trial_net
        trial = MedicalImagingTrial(scdn, sites[0], sites, config=SMALL)
        with pytest.raises(WorkloadError):
            trial.run_pipeline()

    def test_analyses_require_datasets(self, trial_net):
        scdn, sites = trial_net
        trial = MedicalImagingTrial(scdn, sites[0], sites, config=SMALL)
        with pytest.raises(WorkloadError):
            trial.run_analyses()

    def test_lead_must_be_a_site(self, trial_net):
        scdn, sites = trial_net
        with pytest.raises(WorkloadError):
            MedicalImagingTrial(scdn, sites[0], sites[1:], config=SMALL)

    def test_empty_sites_rejected(self, trial_net):
        scdn, sites = trial_net
        with pytest.raises(WorkloadError):
            MedicalImagingTrial(scdn, sites[0], [], config=SMALL)

    def test_subjects_round_robin_across_sites(self, trial_net):
        scdn, sites = trial_net
        trial = MedicalImagingTrial(scdn, sites[0], sites, config=SMALL, seed=1)
        trial.enroll()
        trial.acquire_sessions()
        assert {s.site for s in trial.sessions} == set(sites[:4])

    def test_report_volume_accounting(self, trial_net):
        scdn, sites = trial_net
        trial = MedicalImagingTrial(scdn, sites[0], sites, config=SMALL, seed=1)
        report = trial.run()
        assert report.total_raw_bytes == 4 * 10 * MB
        assert report.total_derived_bytes == 4 * SMALL.derived_bytes_per_session
