"""Unit tests for repro.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import choice_without_replacement, make_rng, spawn, zipf_weights


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert make_rng(3).integers(1000) == make_rng(3).integers(1000)

    def test_generator_passes_through(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        a = spawn(make_rng(1), 3)
        b = spawn(make_rng(1), 3)
        for ga, gb in zip(a, b):
            assert ga.integers(10**6) == gb.integers(10**6)

    def test_children_differ_from_each_other(self):
        children = spawn(make_rng(1), 2)
        assert children[0].integers(10**9) != children[1].integers(10**9)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(1), -1)

    def test_zero_children(self):
        assert spawn(make_rng(1), 0) == []


class TestChoice:
    def test_distinct_results(self):
        rng = make_rng(0)
        out = choice_without_replacement(rng, list("abcdef"), 4)
        assert len(out) == len(set(out)) == 4

    def test_k_equals_population(self):
        out = choice_without_replacement(make_rng(0), [1, 2, 3], 3)
        assert sorted(out) == [1, 2, 3]

    def test_k_zero(self):
        assert choice_without_replacement(make_rng(0), [1], 0) == []

    def test_oversampling_rejected(self):
        with pytest.raises(ValueError):
            choice_without_replacement(make_rng(0), [1, 2], 3)

    def test_weights_bias_selection(self):
        rng = make_rng(0)
        hits = sum(
            choice_without_replacement(rng, ["x", "y"], 1, weights=np.array([0.99, 0.01]))[0] == "x"
            for _ in range(200)
        )
        assert hits > 150

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            choice_without_replacement(make_rng(0), [1, 2], 1, weights=np.array([1.0]))
        with pytest.raises(ValueError):
            choice_without_replacement(make_rng(0), [1, 2], 1, weights=np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            choice_without_replacement(make_rng(0), [1, 2], 1, weights=np.array([0.0, 0.0]))

    def test_preserves_item_identity(self):
        items = [("tuple", 1), ("tuple", 2)]
        out = choice_without_replacement(make_rng(0), items, 2)
        assert all(isinstance(x, tuple) for x in out)


class TestZipf:
    def test_normalized_and_decreasing(self):
        w = zipf_weights(10, 1.0)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] >= w[i + 1] for i in range(9))

    def test_exponent_zero_uniform(self):
        w = zipf_weights(4, 0.0)
        assert np.allclose(w, 0.25)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)
