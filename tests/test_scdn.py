"""Integration tests for the SCDN facade."""

from __future__ import annotations

import pytest

from repro.errors import AuthorizationError, ConfigurationError
from repro.ids import AuthorId
from repro.scdn import SCDN, SCDNConfig
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus
from repro.metrics import compute_cdn_metrics, compute_social_metrics

from .conftest import pub


@pytest.fixture
def community_graph():
    """Two labs bridged through carol."""
    pubs = [
        pub("p1", 2009, "alice", "bob", "carol"),
        pub("p2", 2010, "carol", "dave", "erin"),
        pub("p3", 2010, "alice", "bob"),
        pub("p4", 2010, "dave", "erin"),
    ]
    return build_coauthorship_graph(Corpus(pubs))


@pytest.fixture
def net(community_graph):
    scdn = SCDN(community_graph, seed=1)
    for a in ("alice", "bob", "carol", "dave", "erin"):
        scdn.join(AuthorId(a), region="us" if a < "d" else "eu")
    return scdn


class TestJoin:
    def test_join_creates_client_and_registers(self, net):
        assert len(net.clients) == 5
        assert net.server.n_nodes == 5

    def test_double_join_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.join(AuthorId("alice"))

    def test_non_member_cannot_join(self, net):
        with pytest.raises(Exception):
            net.join(AuthorId("stranger"))


class TestPublishAccess:
    def test_owner_publishes_and_members_access(self, net):
        net.publish(AuthorId("alice"), "data", 1_000_000, n_segments=2)
        outcomes = net.access(AuthorId("bob"), "data")
        assert len(outcomes) == 2
        assert all(o.ok for o in outcomes)

    def test_unjoined_cannot_publish(self, community_graph):
        scdn = SCDN(community_graph, seed=1)
        with pytest.raises(AuthorizationError):
            scdn.publish(AuthorId("alice"), "d", 100)

    def test_project_boundary_enforced(self, net):
        net.create_project("trial", [AuthorId("alice"), AuthorId("bob")])
        net.publish(AuthorId("alice"), "secret", 1000, project="trial")
        assert net.can_access(AuthorId("bob"), "secret")
        assert not net.can_access(AuthorId("erin"), "secret")
        with pytest.raises(AuthorizationError):
            net.access(AuthorId("erin"), "secret")

    def test_owner_must_be_on_project(self, net):
        net.create_project("trial", [AuthorId("bob")])
        with pytest.raises(AuthorizationError):
            net.publish(AuthorId("alice"), "d", 100, project="trial")

    def test_unknown_project_rejected(self, net):
        with pytest.raises(ConfigurationError):
            net.publish(AuthorId("alice"), "d", 100, project="ghost")

    def test_duplicate_project_rejected(self, net):
        net.create_project("p", [AuthorId("alice")])
        with pytest.raises(ConfigurationError):
            net.create_project("p", [AuthorId("bob")])

    def test_proximity_policy_applies_to_untagged_data(self, net):
        # erin is 2 hops from alice (alice-carol-erin): within default 2 hops
        net.publish(AuthorId("alice"), "open", 1000)
        assert net.can_access(AuthorId("erin"), "open")


class TestChurn:
    def test_offline_online_cycle(self, net):
        net.publish(AuthorId("alice"), "d", 1000)
        net.set_offline(AuthorId("carol"))
        net.set_online(AuthorId("carol"))
        out = net.access(AuthorId("bob"), "d")
        assert all(o.ok for o in out)

    def test_departure_migrates_replicas(self, net):
        ds = net.publish(AuthorId("alice"), "d", 1000, n_replicas=2)
        holders = {
            r.node_id
            for r in net.server.catalog.replicas_of_dataset(ds.dataset_id)
        }
        victim = net.server.author_of(sorted(holders)[0])
        net.depart(victim)
        assert net.server.under_replicated() == []

    def test_collector_sees_state_changes(self, net):
        net.set_offline(AuthorId("dave"))
        states = [e.state for e in net.collector.node_states if e.node == "dave"]
        assert states[-1] == "offline"


class TestMetricsIntegration:
    def test_full_cycle_produces_reports(self, net):
        net.publish(AuthorId("alice"), "d", 10_000, n_segments=2)
        for a in ("bob", "carol", "dave"):
            net.access(AuthorId(a), "d")
        net.sync_usage()
        cdn = compute_cdn_metrics(net.collector, horizon_s=3600.0)
        social = compute_social_metrics(net.collector)
        assert cdn.n_requests == 6
        assert cdn.request_success_ratio > 0.9
        assert social.allocated_ratio > 0
        assert social.transaction_volume_bytes >= 0

    def test_requests_classified_by_hops(self, net):
        net.publish(AuthorId("alice"), "d", 1000, n_replicas=1)
        for a in ("alice", "bob", "carol", "dave", "erin"):
            net.access(AuthorId(a), "d")
        kinds = {e.outcome for e in net.collector.requests}
        assert "local" in kinds or "near" in kinds


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_replicas": 0},
            {"default_capacity_bytes": 0},
            {"proximity_hops": -1},
            {"transfer_failure_prob": 1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SCDNConfig(**kwargs)


class TestUpdatePropagation:
    def test_owner_update_propagates(self, net):
        from repro.ids import AuthorId

        net.publish(AuthorId("alice"), "d", 1000, n_segments=2, n_replicas=3)
        records = net.update(AuthorId("alice"), "d")
        assert len(records) == 2
        assert all(r.version == 1 for r in records)
        net.engine.run(until=1000.0)
        for seg_id in (r.segment_id for r in records):
            assert net.propagator.is_consistent(seg_id)

    def test_non_owner_cannot_update(self, net):
        from repro.errors import AuthorizationError
        from repro.ids import AuthorId

        net.publish(AuthorId("alice"), "d", 1000)
        with pytest.raises(AuthorizationError, match="owner"):
            net.update(AuthorId("bob"), "d")

    def test_versions_accumulate(self, net):
        from repro.ids import AuthorId

        net.publish(AuthorId("alice"), "d", 1000)
        net.update(AuthorId("alice"), "d")
        net.engine.run(until=500.0)
        records = net.update(AuthorId("alice"), "d")
        assert records[0].version == 2
