"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import string

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ids import AuthorId, DatasetId, NodeId, PublicationId, SegmentId
from repro.rng import zipf_weights
from repro.social.graph import build_coauthorship_graph
from repro.social.metrics import clustering_coefficients, degree_vector
from repro.social.records import Corpus, Publication
from repro.social.trust import (
    BaselineTrust,
    MaxAuthorsTrust,
    MinCoauthorshipTrust,
)
from repro.social.ego import ego_corpus, hop_distances
from repro.cdn.content import segment_dataset
from repro.cdn.storage import StorageRepository
from repro.casestudy.hitrate import HitRateEvaluator
from repro.sim.engine import SimulationEngine

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

author_ids = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4).map(AuthorId)


@st.composite
def corpora(draw, min_pubs=1, max_pubs=25):
    """Random small corpora with years 2009-2011 and 1-6 authors per pub."""
    n = draw(st.integers(min_pubs, max_pubs))
    pubs = []
    for i in range(n):
        authors = draw(
            st.sets(author_ids, min_size=1, max_size=6)
        )
        year = draw(st.integers(2009, 2011))
        pubs.append(
            Publication(
                pub_id=PublicationId(f"p{i}"),
                year=year,
                authors=frozenset(authors),
            )
        )
    return Corpus(pubs)


# ---------------------------------------------------------------------------
# corpus / graph invariants
# ---------------------------------------------------------------------------


class TestCorpusGraphProperties:
    @given(corpora())
    @settings(max_examples=60, deadline=None)
    def test_graph_nodes_equal_corpus_authors(self, corpus):
        g = build_coauthorship_graph(corpus)
        assert set(g.nodes()) == set(corpus.author_ids)

    @given(corpora())
    @settings(max_examples=60, deadline=None)
    def test_edge_weights_match_pair_counts(self, corpus):
        g = build_coauthorship_graph(corpus)
        counts = corpus.coauthorship_counts()
        for (a, b), c in counts.items():
            assert g.edge_weight(a, b) == c
        assert g.n_edges == len(counts)

    @given(corpora())
    @settings(max_examples=60, deadline=None)
    def test_year_filter_partition(self, corpus):
        """Train + test partition the corpus when windows tile the years."""
        train = corpus.filter_years(2009, 2010)
        test = corpus.filter_years(2011, 2011)
        assert len(train) + len(test) == len(corpus)

    @given(corpora(), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_max_author_filter_sound(self, corpus, k):
        filtered = corpus.filter_max_authors(k)
        assert all(p.n_authors <= k for p in filtered)
        kept = {p.pub_id for p in filtered}
        dropped = [p for p in corpus if p.pub_id not in kept]
        assert all(p.n_authors > k for p in dropped)

    @given(corpora())
    @settings(max_examples=40, deadline=None)
    def test_clustering_in_unit_interval(self, corpus):
        g = build_coauthorship_graph(corpus)
        for v in clustering_coefficients(g).values():
            assert -1e-9 <= v <= 1.0 + 1e-9

    @given(corpora())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_is_twice_edges(self, corpus):
        g = build_coauthorship_graph(corpus)
        assert sum(degree_vector(g).values()) == 2 * g.n_edges


class TestTrustProperties:
    @given(corpora())
    @settings(max_examples=40, deadline=None)
    def test_prunings_never_grow(self, corpus):
        base = BaselineTrust().prune(corpus)
        for heuristic in (MinCoauthorshipTrust(2), MaxAuthorsTrust(5)):
            sub = heuristic.prune(corpus)
            assert sub.n_nodes <= base.n_nodes
            assert sub.n_edges <= base.n_edges
            assert sub.n_publications <= base.n_publications

    @given(corpora())
    @settings(max_examples=40, deadline=None)
    def test_pruned_nodes_subset_of_baseline(self, corpus):
        base = set(BaselineTrust().prune(corpus).graph.nodes())
        sub = set(MinCoauthorshipTrust(2).prune(corpus).graph.nodes())
        assert sub <= base

    @given(corpora(), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_min_coauthorship_monotone_in_threshold(self, corpus, k):
        lo = MinCoauthorshipTrust(k).prune(corpus)
        hi = MinCoauthorshipTrust(k + 1).prune(corpus)
        assert hi.n_edges <= lo.n_edges
        assert hi.n_nodes <= lo.n_nodes

    @given(corpora())
    @settings(max_examples=40, deadline=None)
    def test_surviving_publications_all_contribute_edges(self, corpus):
        sub = MinCoauthorshipTrust(2).prune(corpus)
        nodes = set(sub.graph.nodes())
        for p in sub.corpus:
            # at least one pair of this publication is an edge of the graph
            assert any(
                a in nodes and b in nodes and sub.graph.edge_weight(a, b) >= 1
                for a, b in p.coauthor_pairs()
            )


class TestEgoProperties:
    @given(corpora(min_pubs=2), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_ego_is_subcorpus_and_contains_seed(self, corpus, hops):
        seed = sorted(corpus.author_ids)[0]
        ego = ego_corpus(corpus, seed, hops=hops)
        assert seed in ego.author_ids
        assert {p.pub_id for p in ego} <= {p.pub_id for p in corpus}

    @given(corpora(min_pubs=2))
    @settings(max_examples=40, deadline=None)
    def test_hop_distances_satisfy_triangle_step(self, corpus):
        g = build_coauthorship_graph(corpus)
        seed = sorted(corpus.author_ids)[0]
        dist = hop_distances(g, {seed})
        for a, d in dist.items():
            if d == 0:
                continue
            # some neighbor is exactly one hop closer
            assert any(dist.get(n) == d - 1 for n in g.neighbors(a))


class TestHitRateProperties:
    @given(corpora(min_pubs=3), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_hit_rate_monotone_in_replicas(self, corpus, k):
        train = corpus.filter_years(2009, 2010)
        test = corpus.filter_years(2011, 2011)
        if len(train) == 0:
            return
        graph = build_coauthorship_graph(train)
        ev = HitRateEvaluator(graph, test)
        nodes = sorted(graph.nodes())
        if len(nodes) < 2:
            return
        small = ev.evaluate(nodes[:1])
        k = min(k + 1, len(nodes))
        large = ev.evaluate(nodes[:k])
        assert large.hits >= small.hits

    @given(corpora(min_pubs=3))
    @settings(max_examples=40, deadline=None)
    def test_full_placement_hits_every_in_graph_unit(self, corpus):
        train = corpus.filter_years(2009, 2010)
        test = corpus.filter_years(2011, 2011)
        if len(train) == 0:
            return
        graph = build_coauthorship_graph(train)
        ev = HitRateEvaluator(graph, test)
        nodes = sorted(graph.nodes())
        if not nodes:
            return
        r = ev.evaluate(nodes)
        assert r.hits == r.in_graph_units


class TestStorageProperties:
    @given(
        st.integers(100, 10_000),
        st.lists(st.integers(1, 500), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, capacity, sizes):
        repo = StorageRepository(NodeId("n"), capacity, replica_quota=0.6)
        stored = 0
        for i, size in enumerate(sizes):
            try:
                repo.store_replica(SegmentId(f"s{i}"), size)
                stored += size
            except Exception:
                pass
            assert repo.replica_used_bytes == stored
            assert repo.replica_used_bytes <= repo.replica_quota_bytes

    @given(st.integers(1, 10), st.integers(1, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_segmentation_partitions_exactly(self, n_segments, extra):
        size = n_segments + extra
        ds = segment_dataset(DatasetId("d"), AuthorId("o"), size, n_segments=n_segments)
        assert sum(s.size_bytes for s in ds.segments) == size
        assert all(s.size_bytes > 0 for s in ds.segments)
        assert [s.index for s in ds.segments] == list(range(n_segments))


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_events_execute_in_nondecreasing_time(self, times):
        engine = SimulationEngine()
        executed = []
        for t in times:
            engine.schedule(t, lambda e: executed.append(e.now))
        engine.run()
        assert executed == sorted(executed)
        assert len(executed) == len(times)


class TestRngProperties:
    @given(st.integers(1, 500), st.floats(0.0, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_zipf_weights_valid_distribution(self, n, exponent):
        w = zipf_weights(n, exponent)
        assert w.shape == (n,)
        assert abs(w.sum() - 1.0) < 1e-9
        assert np.all(np.diff(w) <= 1e-12)  # non-increasing


class TestOverlayProperties:
    @given(
        st.integers(2, 12),
        st.floats(0.05, 1.0),
        st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_cover_coverage_monotone_in_budget(self, n, duty_frac, seed):
        from repro.cdn.overlay import build_availability_graph, select_cover
        from repro.sim.availability import Diurnal

        nodes = [NodeId(f"n{i}") for i in range(n)]
        model = Diurnal(duty_hours=max(0.5, 24.0 * duty_frac), seed=seed)
        graph = build_availability_graph(nodes, model, min_overlap=0.01)
        if graph.number_of_edges() == 0:
            return
        cov = [
            select_cover(graph, budget=b).coverage
            for b in range(1, min(n, 5) + 1)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(cov, cov[1:]))

    @given(st.integers(2, 12), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_assignment_edges_exist_in_graph(self, n, seed):
        from repro.cdn.overlay import build_availability_graph, select_cover
        from repro.sim.availability import Diurnal

        nodes = [NodeId(f"n{i}") for i in range(n)]
        model = Diurnal(duty_hours=12.0, seed=seed)
        graph = build_availability_graph(nodes, model, min_overlap=0.01)
        if graph.number_of_edges() == 0:
            return
        sel = select_cover(graph, budget=3)
        for node, host in sel.assignment.items():
            assert node == host or graph.has_edge(node, host)
        # selected hosts always self-assign
        for host in sel.selected:
            assert sel.assignment[host] == host


class TestConsistencyProperties:
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_tracker_versions_monotone(self, ops):
        from repro.cdn.consistency import ReplicaVersionTracker

        t = ReplicaVersionTracker()
        nodes = [NodeId("n0"), NodeId("n1"), NodeId("n2")]
        seg = SegmentId("d:seg0")
        last_latest = 0
        for op in ops:
            if op == 0:
                t.commit_write(seg, nodes[0])
            else:
                t.apply_update(seg, nodes[op], t.latest_version(seg))
            assert t.latest_version(seg) >= last_latest
            last_latest = t.latest_version(seg)
            for n in nodes:
                assert t.node_version(seg, n) <= t.latest_version(seg)
