"""Unit tests for repro.middleware.auth."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, ConfigurationError
from repro.ids import AuthorId
from repro.middleware.auth import Credential, SocialNetworkPlatform
from repro.social.graph import build_coauthorship_graph



@pytest.fixture
def platform(tiny_corpus):
    return SocialNetworkPlatform(build_coauthorship_graph(tiny_corpus))


class TestRegistration:
    def test_member_registers(self, platform):
        cred = platform.register_user(AuthorId("alice"), "pw")
        assert cred.author == "alice"
        assert platform.is_registered(AuthorId("alice"))

    def test_non_member_rejected(self, platform):
        with pytest.raises(AuthenticationError):
            platform.register_user(AuthorId("stranger"), "pw")

    def test_double_registration_rejected(self, platform):
        platform.register_user(AuthorId("alice"), "pw")
        with pytest.raises(AuthenticationError):
            platform.register_user(AuthorId("alice"), "pw2")

    def test_empty_secret_rejected(self, platform):
        with pytest.raises(ConfigurationError):
            platform.register_user(AuthorId("alice"), "")

    def test_credential_requires_secret(self):
        with pytest.raises(ConfigurationError):
            Credential(AuthorId("x"), "")


class TestAuthentication:
    def test_valid_credential_gets_token(self, platform):
        cred = platform.register_user(AuthorId("alice"), "pw")
        token = platform.authenticate(cred)
        assert platform.whoami(token) == "alice"

    def test_wrong_secret_rejected(self, platform):
        platform.register_user(AuthorId("alice"), "pw")
        with pytest.raises(AuthenticationError, match="bad secret"):
            platform.authenticate(Credential(AuthorId("alice"), "wrong"))

    def test_unknown_user_rejected(self, platform):
        with pytest.raises(AuthenticationError, match="unknown"):
            platform.authenticate(Credential(AuthorId("bob"), "pw"))

    def test_tokens_are_unique(self, platform):
        cred = platform.register_user(AuthorId("alice"), "pw")
        assert platform.authenticate(cred) != platform.authenticate(cred)

    def test_revoked_token_invalid(self, platform):
        cred = platform.register_user(AuthorId("alice"), "pw")
        token = platform.authenticate(cred)
        platform.revoke(token)
        with pytest.raises(AuthenticationError):
            platform.whoami(token)

    def test_revoke_idempotent(self, platform):
        platform.revoke("nonexistent")  # no error


class TestRelationships:
    def test_are_connected(self, platform):
        assert platform.are_connected(AuthorId("alice"), AuthorId("bob"))
        assert not platform.are_connected(AuthorId("alice"), AuthorId("eve"))

    def test_friends_of(self, platform):
        assert set(platform.friends_of(AuthorId("carol"))) == {"alice", "bob", "dave"}

    def test_relationship_strength(self, platform):
        assert platform.relationship_strength(AuthorId("alice"), AuthorId("bob")) == 2
        assert platform.relationship_strength(AuthorId("alice"), AuthorId("eve")) == 0
