"""Unit tests for repro.middleware.session."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, ConfigurationError
from repro.ids import AuthorId
from repro.middleware.auth import Credential, SocialNetworkPlatform
from repro.middleware.session import SessionManager
from repro.social.graph import build_coauthorship_graph


@pytest.fixture
def manager(tiny_corpus):
    platform = SocialNetworkPlatform(build_coauthorship_graph(tiny_corpus))
    platform.register_user(AuthorId("alice"), "pw")
    return SessionManager(platform, ttl_s=100.0)


def cred():
    return Credential(AuthorId("alice"), "pw")


class TestLifecycle:
    def test_login_and_validate(self, manager):
        session = manager.login(cred(), now=0.0)
        assert session.author == "alice"
        assert manager.validate(session.token, now=50.0) is session

    def test_expiry(self, manager):
        session = manager.login(cred(), now=0.0)
        with pytest.raises(AuthenticationError, match="expired"):
            manager.validate(session.token, now=100.0)

    def test_expired_session_also_revoked_on_platform(self, manager):
        session = manager.login(cred(), now=0.0)
        with pytest.raises(AuthenticationError):
            manager.validate(session.token, now=200.0)
        with pytest.raises(AuthenticationError):
            manager.platform.whoami(session.token)

    def test_logout(self, manager):
        session = manager.login(cred(), now=0.0)
        manager.logout(session.token)
        with pytest.raises(AuthenticationError):
            manager.validate(session.token, now=1.0)

    def test_unknown_token(self, manager):
        with pytest.raises(AuthenticationError, match="unknown"):
            manager.validate("bogus", now=0.0)

    def test_bad_credential_denied(self, manager):
        with pytest.raises(AuthenticationError):
            manager.login(Credential(AuthorId("alice"), "wrong"))

    def test_active_sessions_counts_unexpired(self, manager):
        manager.login(cred(), now=0.0)
        manager.login(cred(), now=50.0)
        assert manager.active_sessions(now=120.0) == 1

    def test_is_valid_boundary(self, manager):
        session = manager.login(cred(), now=0.0)
        assert session.is_valid(99.999)
        assert not session.is_valid(100.0)

    def test_invalid_ttl(self, manager):
        with pytest.raises(ConfigurationError):
            SessionManager(manager.platform, ttl_s=0.0)
