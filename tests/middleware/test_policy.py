"""Unit tests for repro.middleware.policy."""

from __future__ import annotations

import pytest

from repro.errors import AuthorizationError, ConfigurationError
from repro.ids import AuthorId, DatasetId
from repro.cdn.content import segment_dataset
from repro.middleware.policy import (
    AccessDecision,
    OwnerPolicy,
    PolicyStack,
    ProjectMembershipPolicy,
    SocialProximityPolicy,
    TrustThresholdPolicy,
)
from repro.social.graph import build_coauthorship_graph
from repro.social.trust_model import InteractionRecord, TrustModel

ALICE, BOB, CAROL, DAVE, EVE = (AuthorId(a) for a in ("alice", "bob", "carol", "dave", "eve"))


def ds(owner=ALICE, project=None):
    return segment_dataset(DatasetId("d"), owner, 100, project=project)


class TestOwnerPolicy:
    def test_owner_allowed(self):
        assert OwnerPolicy().evaluate(ALICE, ds()) is AccessDecision.ALLOW

    def test_others_abstain(self):
        assert OwnerPolicy().evaluate(BOB, ds()) is AccessDecision.ABSTAIN


class TestProjectMembership:
    def test_member_allowed(self):
        p = ProjectMembershipPolicy({"trial": {ALICE, BOB}})
        assert p.evaluate(BOB, ds(project="trial")) is AccessDecision.ALLOW

    def test_non_member_denied(self):
        p = ProjectMembershipPolicy({"trial": {ALICE}})
        assert p.evaluate(BOB, ds(project="trial")) is AccessDecision.DENY

    def test_untagged_dataset_abstains(self):
        p = ProjectMembershipPolicy({"trial": {ALICE}})
        assert p.evaluate(BOB, ds(project=None)) is AccessDecision.ABSTAIN

    def test_unknown_project_denied(self):
        p = ProjectMembershipPolicy({})
        assert p.evaluate(ALICE, ds(project="ghost")) is AccessDecision.DENY


class TestSocialProximity:
    @pytest.fixture
    def graph(self, tiny_corpus):
        return build_coauthorship_graph(tiny_corpus)

    def test_within_hops_allowed(self, graph):
        p = SocialProximityPolicy(graph, max_hops=1)
        assert p.evaluate(BOB, ds(owner=ALICE)) is AccessDecision.ALLOW

    def test_beyond_hops_abstains(self, graph):
        p = SocialProximityPolicy(graph, max_hops=1)
        assert p.evaluate(DAVE, ds(owner=ALICE)) is AccessDecision.ABSTAIN

    def test_disconnected_abstains(self, graph):
        p = SocialProximityPolicy(graph, max_hops=5)
        assert p.evaluate(EVE, ds(owner=ALICE)) is AccessDecision.ABSTAIN

    def test_owner_outside_graph_abstains(self, graph):
        p = SocialProximityPolicy(graph, max_hops=2)
        assert p.evaluate(ALICE, ds(owner=AuthorId("ghost"))) is AccessDecision.ABSTAIN

    def test_invalid_hops(self, graph):
        with pytest.raises(ConfigurationError):
            SocialProximityPolicy(graph, max_hops=-1)


class TestTrustThreshold:
    def test_trusted_pair_allowed(self):
        trust = TrustModel()
        trust.record(InteractionRecord(ALICE, BOB, "publication", 2009))
        trust.record(InteractionRecord(ALICE, BOB, "publication", 2010))
        p = TrustThresholdPolicy(trust, threshold=1.5)
        assert p.evaluate(BOB, ds(owner=ALICE)) is AccessDecision.ALLOW

    def test_untrusted_abstains(self):
        p = TrustThresholdPolicy(TrustModel(), threshold=1.0)
        assert p.evaluate(BOB, ds(owner=ALICE)) is AccessDecision.ABSTAIN

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            TrustThresholdPolicy(TrustModel(), threshold=0.0)


class TestPolicyStack:
    def test_any_mode_allow_wins_over_abstain(self):
        stack = PolicyStack([OwnerPolicy()])
        assert stack.evaluate(ALICE, ds()) is AccessDecision.ALLOW

    def test_default_deny(self):
        stack = PolicyStack([OwnerPolicy()])
        assert stack.evaluate(BOB, ds()) is AccessDecision.DENY

    def test_deny_beats_allow(self):
        stack = PolicyStack(
            [OwnerPolicy(), ProjectMembershipPolicy({"trial": {BOB}})]
        )
        # alice owns it but is not on the project roster -> DENY wins
        assert stack.evaluate(ALICE, ds(owner=ALICE, project="trial")) is AccessDecision.DENY

    def test_all_mode_requires_unanimity(self, tiny_corpus):
        graph = build_coauthorship_graph(tiny_corpus)
        stack = PolicyStack(
            [
                ProjectMembershipPolicy({"trial": {BOB, ALICE}}),
                SocialProximityPolicy(graph, max_hops=1),
            ],
            mode="all",
        )
        assert stack.evaluate(BOB, ds(owner=ALICE, project="trial")) is AccessDecision.ALLOW
        # dave: proximity abstains, project denies
        assert stack.evaluate(DAVE, ds(owner=ALICE, project="trial")) is AccessDecision.DENY

    def test_all_mode_all_abstain_is_deny(self):
        stack = PolicyStack([OwnerPolicy()], mode="all")
        assert stack.evaluate(BOB, ds(owner=ALICE)) is AccessDecision.DENY

    def test_authorize_raises_on_deny(self):
        stack = PolicyStack([OwnerPolicy()])
        with pytest.raises(AuthorizationError):
            stack.authorize(BOB, ds())
        stack.authorize(ALICE, ds())  # no raise

    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicyStack([])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicyStack([OwnerPolicy()], mode="majority")
