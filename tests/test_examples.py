"""Smoke tests for the example scripts.

Each example must compile, expose a ``main()`` entry point, and guard it
with ``if __name__ == "__main__"``. The two fastest examples are executed
end-to-end; the heavier ones are covered by the benchmarks that exercise
the same code paths.
"""

from __future__ import annotations

import ast
import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
class TestExampleStructure:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_main_and_guard(self, path):
        tree = ast.parse(path.read_text())
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names
        assert 'if __name__ == "__main__"' in path.read_text()

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"


class TestExampleExecution:
    def test_availability_overlay_runs(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "availability_overlay.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "Lowest-cost cover" in out

    def test_examples_import_only_public_api(self):
        """Examples should not reach into private (underscore) attributes."""
        for path in EXAMPLES:
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.Attribute) and node.attr.startswith("_"):
                    pytest.fail(f"{path.name} accesses private attribute {node.attr}")
