"""Tests for the repro CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.social.io import save_corpus
from repro.social.records import Corpus

from .conftest import pub


@pytest.fixture
def small_corpus_file(tmp_path):
    """A tiny but pipeline-viable corpus on disk."""
    pubs = []
    for y in (2009, 2010, 2011):
        pubs += [
            pub(f"l{y}", y, "a", "b", "c"),
            pub(f"r{y}", y, "c", "d", "e"),
            pub(f"s{y}", y, "a", "b"),
        ]
    path = tmp_path / "corpus.json"
    save_corpus(Corpus(pubs), path)
    return str(path)


class TestGenerate:
    def test_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "c.json"
        assert main(["generate", "--out", str(out), "--seed", "3"]) == 0
        assert out.exists()
        assert "publications" in capsys.readouterr().out


class TestTable1:
    def test_synthetic(self, capsys):
        # use a tiny synthetic corpus via --corpus to stay fast? synthetic
        # default is heavier; run against a file instead (below)
        pass

    def test_from_corpus_file(self, small_corpus_file, capsys):
        rc = main(
            ["table1", "--corpus", small_corpus_file, "--seed-author", "a", "--hops", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "number-of-authors" in out

    def test_corpus_requires_seed_author(self, small_corpus_file):
        with pytest.raises(SystemExit):
            main(["table1", "--corpus", small_corpus_file])

    def test_unknown_seed_author_rejected(self, small_corpus_file):
        with pytest.raises(SystemExit):
            main(["table1", "--corpus", small_corpus_file, "--seed-author", "zz"])


class TestFig2:
    def test_from_corpus_file(self, small_corpus_file, capsys):
        rc = main(["fig2", "--corpus", small_corpus_file, "--seed-author", "a"])
        assert rc == 0
        assert "islands" in capsys.readouterr().out


class TestFig3:
    def test_from_corpus_file(self, small_corpus_file, capsys):
        rc = main(
            [
                "fig3",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--runs", "3",
                "--hops", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "winner" in out
        assert "community-node-degree" in out


class TestSimulate:
    def test_from_corpus_file(self, small_corpus_file, capsys):
        rc = main(
            [
                "simulate",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--members", "4",
                "--days", "0.1",
            ]
        )
        assert rc == 0
        assert "availability" in capsys.readouterr().out


class TestObs:
    def test_report_and_json_export(self, small_corpus_file, tmp_path, capsys):
        import json

        out = tmp_path / "obs.json"
        rc = main(
            [
                "obs",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--members", "4",
                "--days", "0.05",
                "--trace", "3",
                "--json", str(out),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "== counters ==" in text
        assert "alloc.resolve.latency_s" in text
        assert "alloc.resolve.hops" in text
        snapshot = json.loads(out.read_text())
        assert snapshot["schema"] == "repro-obs/1"
        assert snapshot["counters"]["alloc.resolve.total"]["value"] > 0

    def test_unwritable_json_path_exits_cleanly(self, small_corpus_file, capsys):
        rc = main(
            [
                "obs",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--members", "4",
                "--days", "0.05",
                "--json", "/nonexistent-dir/x.json",
            ]
        )
        assert rc == 2
        assert "cannot write" in capsys.readouterr().err

    def test_report_without_export(self, small_corpus_file, capsys):
        rc = main(
            [
                "obs",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--members", "4",
                "--days", "0.05",
                "--trace", "0",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "hop-cache hit rate" in text
        assert "== trace" not in text


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestErrorHandling:
    def test_library_errors_exit_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["table1", "--corpus", str(bad), "--seed-author", "a"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestChaosCommand:
    def test_corruption_campaign_smoke(self, small_corpus_file, capsys):
        rc = main(
            [
                "chaos",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--members", "5",
                "--horizon", "600",
                "--chaos-seed", "7",
                "--corruption-rate", "4e-3",
                "--scrub-interval", "120",
                "--min-redundancy", "0.0",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "corrupt reads served" in out
        assert "corrupt_servable_after_repair=0" in out

    def test_no_scrub_flag_accepted(self, small_corpus_file, capsys):
        # rot with the scrubber disabled: the campaign must still complete
        # (exit status may flag leftover corruption; that's the point)
        rc = main(
            [
                "chaos",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--members", "5",
                "--horizon", "600",
                "--chaos-seed", "7",
                "--corruption-rate", "4e-3",
                "--no-scrub",
                "--min-redundancy", "0.0",
            ]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert "corruption:" in out


class TestScrubCommand:
    def test_detects_and_repairs(self, small_corpus_file, capsys):
        rc = main(
            [
                "scrub",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--members", "5",
                "--corrupt", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("corrupted ") == 2
        assert "quarantined 2" in out
        assert "corrupt servable after repair: 0" in out

    def test_deterministic_per_seed(self, small_corpus_file, capsys):
        argv = [
            "scrub",
            "--corpus", small_corpus_file,
            "--seed-author", "a",
            "--members", "5",
            "--corrupt", "2",
            "--scrub-seed", "11",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_zero_corruptions_is_a_clean_pass(self, small_corpus_file, capsys):
        rc = main(
            [
                "scrub",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--members", "5",
                "--corrupt", "0",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "quarantined 0" in out
        assert "corrupt servable after repair: 0" in out

    def test_negative_corrupt_is_a_clean_error(self, small_corpus_file, capsys):
        rc = main(
            [
                "scrub",
                "--corpus", small_corpus_file,
                "--seed-author", "a",
                "--corrupt", "-1",
            ]
        )
        assert rc == 2
        assert "error: --corrupt must be >= 0" in capsys.readouterr().err


class TestMigrateCommand:
    def test_acceptance_smoke_passes(self, capsys):
        assert main(["migrate"]) == 0
        out = capsys.readouterr().out
        assert "migration off" in out and "migration on" in out
        assert "trust swap evicts" in out
        assert "reduced by" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "migrate.json"
        assert main(["migrate", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["on"]["post_shift_mean_s"] < payload["off"]["post_shift_mean_s"]
        assert payload["on"]["untrusted_leftover"] == 0
        assert payload["off"]["untrusted_leftover"] > 0
        assert payload["on"]["min_mid_move_redundancy"] >= 1.0

    def test_deterministic_per_seed(self, capsys):
        argv = ["migrate", "--migrate-seed", "11"]
        rc_first = main(argv)
        first = capsys.readouterr().out
        rc_second = main(argv)
        assert rc_first == rc_second
        assert capsys.readouterr().out == first

    def test_unwritable_json_path_exits_cleanly(self, capsys):
        rc = main(["migrate", "--json", "/no/such/dir/migrate.json"])
        assert rc == 2
        assert "cannot write" in capsys.readouterr().err
