"""Stateful property test: the allocation server / storage state machine.

Drives an :class:`AllocationServer` through random interleavings of
publish / resolve / offline / online / repair / migrate and checks the
system's core invariants after every step:

* a repository's replica partition never exceeds its quota;
* every ACTIVE replica's data is actually present on its node;
* catalog indexes (by segment / by node) agree with repository contents;
* repair never leaves a recoverable segment under-replicated;
* resolve never returns a replica on an offline node.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.errors import CatalogError, PlacementError
from repro.ids import AuthorId, DatasetId, NodeId
from repro.social.graph import build_coauthorship_graph
from repro.social.records import Corpus, Publication
from repro.ids import PublicationId
from repro.cdn.allocation import AllocationServer
from repro.cdn.content import ReplicaState, segment_dataset
from repro.cdn.placement import RandomPlacement
from repro.cdn.storage import StorageRepository

AUTHORS = [f"m{i}" for i in range(6)]


def _ring_graph():
    pubs = [
        Publication(
            PublicationId(f"p{i}"),
            2009,
            frozenset({AuthorId(AUTHORS[i]), AuthorId(AUTHORS[(i + 1) % len(AUTHORS)])}),
        )
        for i in range(len(AUTHORS))
    ]
    return build_coauthorship_graph(Corpus(pubs))


class SCDNStateMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        self.server = AllocationServer(_ring_graph(), RandomPlacement(), seed=seed)
        self.repos = {}
        for a in AUTHORS:
            repo = StorageRepository(NodeId(f"node-{a}"), 5_000)
            self.server.register_repository(AuthorId(a), repo)
            self.repos[repo.node_id] = repo
        self.n_datasets = 0
        self.offline = set()

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(size=st.integers(50, 800), replicas=st.integers(1, 4))
    def publish(self, size, replicas):
        ds = segment_dataset(
            DatasetId(f"ds{self.n_datasets}"), AuthorId(AUTHORS[0]), size
        )
        try:
            self.server.publish_dataset(ds, n_replicas=replicas)
            self.n_datasets += 1
        except PlacementError:
            pass  # full cluster or everyone offline: acceptable refusal

    @precondition(lambda self: self.n_datasets > 0)
    @rule(ds_idx=st.integers(0, 10**6), requester=st.sampled_from(AUTHORS))
    def resolve(self, ds_idx, requester):
        ds_id = DatasetId(f"ds{ds_idx % self.n_datasets}")
        seg = self.server.catalog.dataset(ds_id).segments[0]
        try:
            resolved = self.server.resolve(seg.segment_id, AuthorId(requester))
        except CatalogError:
            return  # no servable replica right now
        assert resolved.replica.node_id not in self.offline
        assert resolved.replica.servable

    @rule(author=st.sampled_from(AUTHORS))
    def go_offline(self, author):
        node = NodeId(f"node-{author}")
        if node in self.server._repos and node not in self.offline:
            self.server.node_offline(node)
            self.offline.add(node)

    @rule(author=st.sampled_from(AUTHORS))
    def go_online(self, author):
        node = NodeId(f"node-{author}")
        if node in self.offline:
            self.server.node_online(node)
            self.offline.discard(node)

    @rule()
    def repair(self):
        self.server.repair()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def capacity_respected(self):
        if not hasattr(self, "repos"):
            return
        for repo in self.repos.values():
            assert repo.replica_used_bytes <= repo.replica_quota_bytes

    @invariant()
    def active_replicas_have_data(self):
        if not hasattr(self, "server"):
            return
        for rep in self.server.catalog.iter_replicas():
            if rep.state is ReplicaState.ACTIVE:
                assert self.repos[rep.node_id].hosts_segment(rep.segment_id), (
                    f"active replica {rep.replica_id} missing from {rep.node_id}"
                )

    @invariant()
    def catalog_indexes_consistent(self):
        if not hasattr(self, "server"):
            return
        for node, repo in self.repos.items():
            catalog_segs = {
                r.segment_id for r in self.server.catalog.replicas_on_node(node)
            }
            # every catalog entry's data exists; repos may hold no orphans
            for seg in catalog_segs:
                if any(
                    r.state is ReplicaState.ACTIVE
                    for r in self.server.catalog.replicas_of_segment(seg)
                    if r.node_id == node
                ):
                    assert repo.hosts_segment(seg)

    @invariant()
    def recoverable_segments_repairable(self):
        if not hasattr(self, "server"):
            return
        # after an explicit repair, recoverable segments meet their budget
        # (checked opportunistically: run repair and verify nothing
        # recoverable remains below budget when hosts are available)
        self.server.repair()
        for seg_id, live in self.server.under_replicated():
            if live == 0:
                continue  # unrecoverable until a holder returns
            # under-replication may persist only if no eligible host exists
            holders = self.server.catalog.nodes_hosting(seg_id)
            eligible = [
                n
                for n in self.repos
                if n not in self.offline
                and n not in holders
                and self.repos[n].can_host(
                    self.server.catalog.segment(seg_id).size_bytes
                )
            ]
            assert not eligible, (
                f"{seg_id} stuck at {live} replicas with eligible hosts {eligible}"
            )


SCDNStateMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestSCDNStateMachine = SCDNStateMachine.TestCase
